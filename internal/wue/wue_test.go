package wue

import (
	"math"
	"testing"
	"testing/quick"

	"thirstyflops/internal/stats"
	"thirstyflops/internal/units"
	"thirstyflops/internal/weather"
)

func TestCurveFloorBelowCutoff(t *testing.T) {
	c := DefaultCurve()
	for _, wb := range []units.Celsius{-20, -5, 0, 2} {
		if got := c.At(wb); got != c.Floor {
			t.Errorf("At(%v) = %v, want floor %v", wb, got, c.Floor)
		}
	}
}

func TestCurveGrowsAboveCutoff(t *testing.T) {
	c := DefaultCurve()
	prev := c.At(c.Cutoff)
	for wb := float64(c.Cutoff) + 1; wb <= 30; wb++ {
		cur := c.At(units.Celsius(wb))
		if cur <= prev {
			t.Fatalf("WUE not increasing at %v°C: %v <= %v", wb, cur, prev)
		}
		prev = cur
	}
}

func TestCurveKnownValue(t *testing.T) {
	c := Curve{Floor: 0.05, Cutoff: 2, Coeff: 0.026}
	// At 22°C wet bulb: 0.05 + 0.026*400 = 10.45.
	got := c.At(22)
	if math.Abs(float64(got)-10.45) > 1e-9 {
		t.Errorf("At(22) = %v, want 10.45", got)
	}
}

func TestCurveValidate(t *testing.T) {
	if err := DefaultCurve().Validate(); err != nil {
		t.Errorf("default curve invalid: %v", err)
	}
	if err := (Curve{Floor: -1}).Validate(); err == nil {
		t.Error("negative floor should fail validation")
	}
	if err := (Curve{Coeff: -0.1}).Validate(); err == nil {
		t.Error("negative coefficient should fail validation")
	}
}

func TestCurveSeries(t *testing.T) {
	c := DefaultCurve()
	wbs := []units.Celsius{0, 10, 20}
	s := c.Series(wbs)
	sf := c.SeriesFloat(wbs)
	if len(s) != 3 || len(sf) != 3 {
		t.Fatal("series length mismatch")
	}
	for i := range s {
		if float64(s[i]) != sf[i] {
			t.Errorf("Series/SeriesFloat disagree at %d", i)
		}
		if s[i] != c.At(wbs[i]) {
			t.Errorf("Series[%d] != At", i)
		}
	}
}

func TestCurveMonotoneProperty(t *testing.T) {
	c := DefaultCurve()
	f := func(a, b float64) bool {
		wa := stats.Clamp(math.Mod(math.Abs(a), 70)-20, -20, 50)
		wb := stats.Clamp(math.Mod(math.Abs(b), 70)-20, -20, 50)
		if wa > wb {
			wa, wb = wb, wa
		}
		return c.At(units.Celsius(wa)) <= c.At(units.Celsius(wb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCurveAlwaysAtLeastFloorProperty(t *testing.T) {
	c := DefaultCurve()
	f := func(wb float64) bool {
		w := stats.Clamp(math.Mod(wb, 100), -50, 50)
		return c.At(units.Celsius(w)) >= c.Floor
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTowerValidate(t *testing.T) {
	if err := DefaultTower().Validate(); err != nil {
		t.Errorf("default tower invalid: %v", err)
	}
	if err := (Tower{CyclesOfConcentration: 1}).Validate(); err == nil {
		t.Error("cycles <= 1 should fail")
	}
	if err := (Tower{CyclesOfConcentration: 4, DriftFraction: 0.5}).Validate(); err == nil {
		t.Error("huge drift should fail")
	}
}

func TestTowerBalanceComponents(t *testing.T) {
	tw := DefaultTower()
	b := tw.Reject(1000, 20)
	if b.Evaporation <= 0 || b.Drift <= 0 || b.Blowdown <= 0 {
		t.Fatalf("all balance components should be positive: %+v", b)
	}
	// Blowdown = evap / (C-1) with C=4 → evap/3.
	if math.Abs(float64(b.Blowdown)-float64(b.Evaporation)/3) > 1e-9 {
		t.Errorf("blowdown = %v, want evap/3 = %v", b.Blowdown, float64(b.Evaporation)/3)
	}
	// Consumption excludes blowdown; withdrawal includes it.
	if b.Consumption() != b.Evaporation+b.Drift {
		t.Error("consumption must be evap+drift")
	}
	if b.Withdrawal() != b.Evaporation+b.Drift+b.Blowdown {
		t.Error("withdrawal must be evap+drift+blowdown")
	}
	if b.Withdrawal() <= b.Consumption() {
		t.Error("withdrawal must exceed consumption")
	}
}

func TestTowerNegativeHeatClamped(t *testing.T) {
	b := DefaultTower().Reject(-50, 20)
	if b.Evaporation != 0 || b.Drift != 0 || b.Blowdown != 0 {
		t.Errorf("negative heat should yield zero balance, got %+v", b)
	}
}

func TestEvaporativeFractionBounds(t *testing.T) {
	tw := DefaultTower()
	for wb := -40.0; wb <= 60; wb += 5 {
		f := tw.EvaporativeFraction(units.Celsius(wb))
		if f < 0.15 || f > 0.98 {
			t.Fatalf("fraction %v out of [0.15,0.98] at %v°C", f, wb)
		}
	}
	if tw.EvaporativeFraction(30) <= tw.EvaporativeFraction(0) {
		t.Error("evaporative fraction should increase with wet bulb")
	}
}

func TestImpliedWUE(t *testing.T) {
	tw := DefaultTower()
	w := tw.ImpliedWUE(1000, 1.5, 25)
	if w <= 0 {
		t.Fatalf("implied WUE should be positive, got %v", w)
	}
	// Doubling PUE (more heat per IT kWh) must raise implied WUE.
	w2 := tw.ImpliedWUE(1000, 3.0, 25)
	if w2 <= w {
		t.Errorf("higher PUE should imply higher WUE: %v vs %v", w2, w)
	}
	if got := tw.ImpliedWUE(0, 1.5, 25); got != 0 {
		t.Errorf("zero energy should imply zero WUE, got %v", got)
	}
}

func TestImpliedWUEScaleInvariant(t *testing.T) {
	// Consumption per kWh should not depend on the absolute energy amount.
	tw := DefaultTower()
	a := tw.ImpliedWUE(100, 1.2, 18)
	b := tw.ImpliedWUE(1e6, 1.2, 18)
	if math.Abs(float64(a-b)) > 1e-9 {
		t.Errorf("implied WUE not scale invariant: %v vs %v", a, b)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]units.LPerKWh{1, 3, 2, 4})
	if s.Min != 1 || s.Max != 4 {
		t.Errorf("min/max = %v/%v, want 1/4", s.Min, s.Max)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 {
		t.Errorf("mean = %v, want 2.5", s.Mean)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Errorf("median = %v, want 2.5", s.Median)
	}
	if s.Range() != 3 {
		t.Errorf("range = %v, want 3", s.Range())
	}
	if z := Summarize(nil); z != (AnnualStats{}) {
		t.Errorf("empty summarize should be zero, got %+v", z)
	}
}

func TestRoundTo(t *testing.T) {
	if got := RoundTo(10.5949, 2); math.Abs(float64(got)-10.59) > 1e-12 {
		t.Errorf("RoundTo = %v, want 10.59", got)
	}
}

func TestAnnualWUEOverRealClimatology(t *testing.T) {
	// Integration: the default curve over the four sites should produce
	// annual mean WUE in a plausible 1.5-5 L/kWh band with ranges wide
	// enough to reproduce Fig. 6(b)'s temporal variation story.
	c := DefaultCurve()
	for name, site := range weather.Sites() {
		yr := site.HourlyYear(42)
		s := Summarize(c.Series(weather.WetBulbSeries(yr)))
		if s.Mean < 1.0 || s.Mean > 6.0 {
			t.Errorf("%s: annual mean WUE %v outside plausible band", name, s.Mean)
		}
		if s.Range() < 4 {
			t.Errorf("%s: WUE annual range %v too narrow for Fig 6(b) shape", name, s.Range())
		}
		if s.Min < float64(c.Floor)-1e-9 {
			t.Errorf("%s: WUE min %v below floor", name, s.Min)
		}
	}
}

func TestTabulatedCurveAccuracy(t *testing.T) {
	// The tabulated lookup must track the exact curve within a bound far
	// below any physically meaningful WUE difference, across the whole
	// validity envelope including the floor region and past the table top.
	c := DefaultCurve()
	tab := c.Tabulate(50)
	const maxErr = 1e-5 // L/kWh; actual error is O(Coeff·step²) ≈ 1e-6
	for wb := -25.0; wb <= 50.0; wb += 0.0137 {
		exact := float64(c.At(units.Celsius(wb)))
		got := float64(tab.At(units.Celsius(wb)))
		if math.Abs(got-exact) > maxErr {
			t.Fatalf("wet bulb %.4f: table %.8f vs exact %.8f", wb, got, exact)
		}
	}
	// Past the tabulated top the lookup clamps to the last knot: still
	// within the curve's soft cap and monotonicity envelope.
	for _, wb := range []float64{51, 60, 200} {
		got := float64(tab.At(units.Celsius(wb)))
		if got > float64(c.Cap) || got < float64(tab.At(50))-1e-9 {
			t.Fatalf("clamped value %v outside [last knot, cap]", got)
		}
	}
	// Below the cutoff the table is exact, not approximate.
	if tab.At(c.Cutoff-1) != c.Floor {
		t.Error("table inexact in the floor region")
	}
}

func TestTabulatedSeriesMatchesCurveSeries(t *testing.T) {
	c := DefaultCurve()
	tab := c.Tabulate(50)
	wbs := weather.WetBulbSeries(weather.Kobe().HourlyYear(1))
	exact := c.Series(wbs)
	fast := tab.Series(wbs)
	for i := range exact {
		if math.Abs(float64(exact[i])-float64(fast[i])) > 1e-5 {
			t.Fatalf("hour %d: %v vs %v", i, fast[i], exact[i])
		}
	}
}

func TestTabulatedCurveNonFiniteInputs(t *testing.T) {
	// Live telemetry can deliver garbage samples; the lookup must answer
	// every float, never panic on an index.
	c := DefaultCurve()
	tab := c.Tabulate(50)
	if got := tab.At(units.Celsius(math.NaN())); got != c.Floor {
		t.Errorf("At(NaN) = %v, want floor", got)
	}
	if got := tab.At(units.Celsius(math.Inf(1))); float64(got) > float64(c.Cap) {
		t.Errorf("At(+Inf) = %v exceeds cap", got)
	}
	if got := tab.At(units.Celsius(math.Inf(-1))); got != c.Floor {
		t.Errorf("At(-Inf) = %v, want floor", got)
	}
	// Huge finite inputs clamp (int conversion of out-of-range floats is
	// implementation-defined and must never be used as an index).
	if got := tab.At(units.Celsius(1e300)); float64(got) > float64(c.Cap) {
		t.Errorf("At(1e300) = %v exceeds cap", got)
	}
}

func TestTabulateDegenerateDomain(t *testing.T) {
	// A table over an empty domain (maxWetBulb below the cutoff) still
	// answers with the floor everywhere below and clamps above.
	c := DefaultCurve()
	tab := c.Tabulate(c.Cutoff - 10)
	if tab.At(c.Cutoff-5) != c.Floor {
		t.Error("degenerate table lost the floor")
	}
	if v := tab.At(c.Cutoff + 100); v < c.Floor {
		t.Errorf("degenerate table returned %v above the domain", v)
	}
}
