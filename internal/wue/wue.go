// Package wue models Water Usage Effectiveness — the litres of water the
// facility consumes to cool one kilowatt-hour of IT energy (Eq. 6 of the
// paper). WUE is a function of the outside wet-bulb temperature: when the
// outside air is cool, economizers cool the datacenter nearly for free;
// as the wet-bulb temperature rises the cooling towers must evaporate
// increasing volumes of water.
//
// Two layers are provided:
//
//   - Curve: the empirical WUE(T_wb) relationship used by the footprint
//     models, matching the paper's Table 2 behaviour (WUE > 0.05 L/kWh,
//     derived from wet-bulb temperature).
//   - Tower: a cooling-tower mass balance (evaporation / blowdown / drift)
//     that separates water *consumption* from water *withdrawal*, feeding
//     the withdrawal model of Sec. 6.
package wue

import (
	"fmt"
	"math"

	"thirstyflops/internal/fingerprint"
	"thirstyflops/internal/stats"
	"thirstyflops/internal/units"
)

// Curve is an empirical WUE model parameterized by four quantities:
// a floor (economizer-mode consumption), a free-cooling cutoff wet-bulb
// temperature, a quadratic coefficient controlling how steeply evaporative
// demand grows past the cutoff, and a soft capacity cap modeling the
// tower's finite design evaporation rate.
//
//	raw(T)  = Floor                          for T <= Cutoff
//	raw(T)  = Floor + Coeff*(T - Cutoff)^2   for T >  Cutoff
//	WUE(T)  = Floor + (Cap-Floor)*tanh((raw-Floor)/(Cap-Floor))  if Cap > Floor
//	WUE(T)  = raw(T)                                             if Cap == 0
type Curve struct {
	Floor  units.LPerKWh // minimum consumption, economizer mode
	Cutoff units.Celsius // wet-bulb temperature where evaporation starts
	Coeff  float64       // L/kWh per (°C)^2 past the cutoff
	Cap    units.LPerKWh // soft saturation; 0 disables the cap
}

// DefaultCurve returns the curve used for all four paper systems. The
// coefficient and cap are calibrated so annual-mean WUE lands near
// 3-4 L/kWh at the warm humid sites and the annual range spans roughly
// 0-12 L/kWh as in the paper's Fig. 6(b).
func DefaultCurve() Curve {
	return Curve{Floor: 0.05, Cutoff: 2.0, Coeff: 0.026, Cap: 13}
}

// Validate reports whether the curve is physically plausible.
func (c Curve) Validate() error {
	switch {
	case c.Floor < 0:
		return fmt.Errorf("wue: negative floor %v", c.Floor)
	case c.Coeff < 0:
		return fmt.Errorf("wue: negative coefficient %v", c.Coeff)
	case c.Cap != 0 && c.Cap <= c.Floor:
		return fmt.Errorf("wue: cap %v must exceed floor %v", c.Cap, c.Floor)
	}
	return nil
}

// At evaluates the curve at a wet-bulb temperature.
func (c Curve) At(wetBulb units.Celsius) units.LPerKWh {
	if wetBulb <= c.Cutoff {
		return c.Floor
	}
	d := float64(wetBulb - c.Cutoff)
	raw := float64(c.Floor) + c.Coeff*d*d
	if c.Cap <= c.Floor {
		return units.LPerKWh(raw)
	}
	span := float64(c.Cap - c.Floor)
	return c.Floor + units.LPerKWh(span*math.Tanh((raw-float64(c.Floor))/span))
}

// Series evaluates the curve over a wet-bulb series.
func (c Curve) Series(wetBulbs []units.Celsius) []units.LPerKWh {
	out := make([]units.LPerKWh, len(wetBulbs))
	for i, wb := range wetBulbs {
		out[i] = c.At(wb)
	}
	return out
}

// SeriesFloat is Series with a plain-float result for the stats helpers.
func (c Curve) SeriesFloat(wetBulbs []units.Celsius) []float64 {
	out := make([]float64, len(wetBulbs))
	for i, wb := range wetBulbs {
		out[i] = float64(c.At(wb))
	}
	return out
}

// Fingerprint writes every field that shapes the curve.
func (c Curve) Fingerprint(h *fingerprint.Hasher) {
	h.Float(float64(c.Floor))
	h.Float(float64(c.Cutoff))
	h.Float(c.Coeff)
	h.Float(float64(c.Cap))
}

// --- Tabulated evaluation ---

// TableStep is the knot spacing of a tabulated curve: 1/64 °C keeps the
// interpolation error of the default curve below 1e-6 L/kWh (the curve's
// second derivative is bounded by 2·Coeff) while the whole table for the
// -20..50 °C envelope stays under 40 KB.
const TableStep = 1.0 / 64

// Table is a pre-tabulated Curve for evaluation at scheduling frequency:
// At replaces the piecewise tanh evaluation with one array lookup and a
// linear interpolation. Values below the curve cutoff return the exact
// floor; values past the table top clamp to the last knot (the curve is
// flat there under its soft cap).
type Table struct {
	floor   units.LPerKWh
	cutoff  float64
	invStep float64
	knots   []units.LPerKWh
}

// Tabulate samples the curve from its cutoff to maxWetBulb (clamped to at
// least the cutoff) at TableStep spacing.
func (c Curve) Tabulate(maxWetBulb units.Celsius) *Table {
	top := math.Max(float64(maxWetBulb), float64(c.Cutoff))
	n := int(math.Ceil((top-float64(c.Cutoff))/TableStep)) + 2
	t := &Table{
		floor:   c.Floor,
		cutoff:  float64(c.Cutoff),
		invStep: 1 / TableStep,
		knots:   make([]units.LPerKWh, n),
	}
	for i := range t.knots {
		t.knots[i] = c.At(units.Celsius(t.cutoff + float64(i)*TableStep))
	}
	return t
}

// At evaluates the tabulated curve. Non-finite inputs are safe: NaN maps
// to the floor and +Inf clamps to the last knot. The range comparisons
// happen in float space before any int conversion, because converting an
// out-of-range float to int is implementation-defined (MinInt on amd64,
// saturating on arm64) and must never pick an index.
func (t *Table) At(wetBulb units.Celsius) units.LPerKWh {
	x := (float64(wetBulb) - t.cutoff) * t.invStep
	if !(x > 0) { // x <= 0 or NaN: economizer floor
		return t.floor
	}
	if x >= float64(len(t.knots)-1) { // covers +Inf and huge finite inputs
		return t.knots[len(t.knots)-1]
	}
	i := int(x)
	frac := x - float64(i)
	a, b := float64(t.knots[i]), float64(t.knots[i+1])
	return units.LPerKWh(a + (b-a)*frac)
}

// Series evaluates the tabulated curve over a wet-bulb series.
func (t *Table) Series(wetBulbs []units.Celsius) []units.LPerKWh {
	out := make([]units.LPerKWh, len(wetBulbs))
	for i, wb := range wetBulbs {
		out[i] = t.At(wb)
	}
	return out
}

// --- Cooling-tower mass balance ---

// LatentHeatKWhPerLiter is the heat removed by evaporating one litre of
// water (2.45 MJ/kg at ~25 °C ≈ 0.68 kWh/L).
const LatentHeatKWhPerLiter = 0.68

// Tower is a wet cooling tower model. The tower rejects the facility heat
// load partly by evaporation (consumptive) and partly by sensible heat
// transfer. Makeup water replaces evaporation, drift, and blowdown;
// blowdown is discharged back to the source so it counts as withdrawal but
// not consumption.
type Tower struct {
	// CyclesOfConcentration is the ratio of dissolved-solid concentration
	// in the basin to the makeup supply; blowdown = evaporation / (C - 1).
	// Typical industrial towers run 3-6 cycles.
	CyclesOfConcentration float64
	// DriftFraction is the fraction of circulating water lost as droplets;
	// modern drift eliminators hold this near 0.1-0.2 % of evaporation.
	DriftFraction float64
}

// DefaultTower returns a tower with typical parameters (4 cycles of
// concentration, 0.2 % drift).
func DefaultTower() Tower {
	return Tower{CyclesOfConcentration: 4, DriftFraction: 0.002}
}

// Validate reports whether the tower parameters are physically plausible.
func (t Tower) Validate() error {
	switch {
	case t.CyclesOfConcentration <= 1:
		return fmt.Errorf("wue: cycles of concentration must exceed 1, got %v", t.CyclesOfConcentration)
	case t.DriftFraction < 0 || t.DriftFraction > 0.05:
		return fmt.Errorf("wue: drift fraction %v out of range", t.DriftFraction)
	}
	return nil
}

// EvaporativeFraction returns the fraction of the heat load rejected by
// evaporation (rather than sensible transfer) at a given wet-bulb
// temperature. When the outside air is cold most heat leaves sensibly;
// approaching design conditions essentially all heat leaves as latent heat.
func (t Tower) EvaporativeFraction(wetBulb units.Celsius) float64 {
	return stats.Clamp(0.35+0.022*float64(wetBulb), 0.15, 0.98)
}

// Balance is the water budget of rejecting a heat load.
type Balance struct {
	Evaporation units.Liters // consumed: leaves as vapor
	Drift       units.Liters // consumed: droplet carry-over
	Blowdown    units.Liters // withdrawn and discharged
}

// Consumption is the consumed share of the balance (evaporation + drift),
// matching the paper's definition of water footprint.
func (b Balance) Consumption() units.Liters { return b.Evaporation + b.Drift }

// Withdrawal is the total makeup water drawn from the source.
func (b Balance) Withdrawal() units.Liters {
	return b.Evaporation + b.Drift + b.Blowdown
}

// Reject computes the water balance for rejecting heat kWh of thermal load
// at the given wet-bulb temperature.
func (t Tower) Reject(heat units.KWh, wetBulb units.Celsius) Balance {
	if heat < 0 {
		heat = 0
	}
	evapHeat := float64(heat) * t.EvaporativeFraction(wetBulb)
	evap := units.Liters(evapHeat / LatentHeatKWhPerLiter)
	drift := units.Liters(float64(evap) * t.DriftFraction)
	blowdown := units.Liters(float64(evap) / (t.CyclesOfConcentration - 1))
	return Balance{Evaporation: evap, Drift: drift, Blowdown: blowdown}
}

// ImpliedWUE converts a tower balance into an effective WUE for an IT
// energy amount: consumption per IT kWh. The heat load of a facility
// approximately equals its total energy draw, i.e. IT energy times PUE.
func (t Tower) ImpliedWUE(itEnergy units.KWh, pue units.PUE, wetBulb units.Celsius) units.LPerKWh {
	if itEnergy <= 0 {
		return 0
	}
	heat := units.KWh(float64(itEnergy) * float64(pue))
	b := t.Reject(heat, wetBulb)
	return units.LPerKWh(float64(b.Consumption()) / float64(itEnergy))
}

// YearBalance integrates the tower mass balance over parallel hourly
// series of IT energy and wet-bulb temperature: the facility heat load is
// IT energy times PUE each hour. The result separates consumption
// (evaporation + drift) from the blowdown that the Sec. 6 withdrawal
// model treats as discharged — replacing ad-hoc discharge assumptions
// with the tower's own physics.
func (t Tower) YearBalance(itEnergy []units.KWh, pue units.PUE, wetBulbs []units.Celsius) (Balance, error) {
	if len(itEnergy) != len(wetBulbs) {
		return Balance{}, fmt.Errorf("wue: series lengths differ (%d vs %d)", len(itEnergy), len(wetBulbs))
	}
	if err := t.Validate(); err != nil {
		return Balance{}, err
	}
	if !pue.Valid() {
		return Balance{}, fmt.Errorf("wue: invalid PUE %v", pue)
	}
	var total Balance
	for h := range itEnergy {
		heat := units.KWh(float64(itEnergy[h]) * float64(pue))
		b := t.Reject(heat, wetBulbs[h])
		total.Evaporation += b.Evaporation
		total.Drift += b.Drift
		total.Blowdown += b.Blowdown
	}
	return total, nil
}

// AnnualStats summarizes a WUE series the way the paper's Fig. 6(b)
// box-plots do.
type AnnualStats struct {
	Min, Median, Mean, Max float64
}

// Summarize computes annual statistics over a WUE series.
func Summarize(series []units.LPerKWh) AnnualStats {
	if len(series) == 0 {
		return AnnualStats{}
	}
	fs := make([]float64, len(series))
	for i, v := range series {
		fs[i] = float64(v)
	}
	return AnnualStats{
		Min:    stats.Min(fs),
		Median: stats.Median(fs),
		Mean:   stats.Mean(fs),
		Max:    stats.Max(fs),
	}
}

// Range returns max - min of the series, used to compare the temporal
// variation of WUE against EWF (Takeaway 4).
func (a AnnualStats) Range() float64 { return a.Max - a.Min }

// RoundTo rounds a WUE value to n decimal places for reporting.
func RoundTo(v units.LPerKWh, n int) units.LPerKWh {
	p := math.Pow(10, float64(n))
	return units.LPerKWh(math.Round(float64(v)*p) / p)
}
