package faultinject

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func openTemp(t *testing.T, fs FS) File {
	t.Helper()
	f, err := fs.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestPassthroughWithoutRules(t *testing.T) {
	in := New(OS{}, 1)
	f := openTemp(t, in)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q, want hello", buf)
	}
}

func TestFailNthWrite(t *testing.T) {
	in := New(OS{}, 1, Rule{Op: OpWrite, Nth: 3, Err: ErrNoSpace})
	f := openTemp(t, in)
	for i := 1; i <= 5; i++ {
		_, err := f.Write([]byte("x"))
		if i == 3 {
			if !errors.Is(err, ErrNoSpace) || !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
				t.Fatalf("write %d: got %v, want injected ENOSPC", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("write %d: unexpected error %v", i, err)
		}
	}
	st := in.Stats()
	if st.Injected["write"] != 1 {
		t.Fatalf("injected write count = %d, want 1", st.Injected["write"])
	}
}

func TestShortWriteLandsHalf(t *testing.T) {
	in := New(OS{}, 1, Rule{Op: OpWrite, Nth: 1, Short: true})
	f := openTemp(t, in)
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want short write", err)
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5 (half the buffer)", n)
	}
	st, err2 := f.Stat()
	if err2 != nil {
		t.Fatal(err2)
	}
	if st.Size() != 5 {
		t.Fatalf("file holds %d bytes, want the torn half (5)", st.Size())
	}
}

func TestSyncAndRenameFaults(t *testing.T) {
	in := New(OS{}, 1,
		Rule{Op: OpSync, Nth: 1},
		Rule{Op: OpRename, Nth: 1},
	)
	f := openTemp(t, in)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync err = %v, want injected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second Sync should pass: %v", err)
	}
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	if err := os.WriteFile(a, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := in.Rename(a, b); !errors.Is(err, ErrInjected) {
		t.Fatalf("Rename err = %v, want injected", err)
	}
	if err := in.Rename(a, b); err != nil {
		t.Fatalf("second Rename should pass: %v", err)
	}
}

func TestPathFilter(t *testing.T) {
	in := New(OS{}, 1, Rule{Op: OpWrite, Nth: 1, Path: "jobs.log"})
	dir := t.TempDir()
	assess, err := in.OpenFile(filepath.Join(dir, "assess.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer assess.Close()
	jobs, err := in.OpenFile(filepath.Join(dir, "jobs.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer jobs.Close()
	if _, err := assess.Write([]byte("x")); err != nil {
		t.Fatalf("assess.log write should pass the filter: %v", err)
	}
	if _, err := jobs.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("jobs.log write err = %v, want injected", err)
	}
}

// TestProbDeterministicFromSeed locks the seeded schedule: the same
// seed must fault the same calls, and a different seed a different set.
func TestProbDeterministicFromSeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(OS{}, seed, Rule{Op: OpAssess, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fire(OpAssess, "") != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged from itself at call %d", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 64-call schedules")
	}
}

func TestTimesBoundsProbRule(t *testing.T) {
	in := New(OS{}, 7, Rule{Op: OpAssess, Prob: 1.0, Times: 3})
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Fire(OpAssess, "") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("rule fired %d times, want Times=3", fired)
	}
}

func TestDelayOnlyRuleInjectsLatencyNotError(t *testing.T) {
	in := New(OS{}, 1, Rule{Op: OpAssess, Nth: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Fire(OpAssess, ""); err != nil {
		t.Fatalf("latency-only rule returned error %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("call returned after %v, want >= 20ms injected latency", d)
	}
	if st := in.Stats(); st.Delayed != 1 || st.Injected["assess"] != 0 {
		t.Fatalf("stats = %+v, want 1 delay and no injected error", st)
	}
}

func TestClearStopsInjection(t *testing.T) {
	in := New(OS{}, 1, Rule{Op: OpWrite, Prob: 1.0})
	f := openTemp(t, in)
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error before Clear, got %v", err)
	}
	in.Clear()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write after Clear: %v", err)
	}
	if got := in.InjectedTotal(); got != 1 {
		t.Fatalf("InjectedTotal = %d, want 1", got)
	}
}
