// Package faultinject is the deterministic fault-injection seam behind
// the resilience test suites: a pluggable filesystem interface (the
// exact surface internal/store touches), a passthrough OS
// implementation, and an Injector that wraps any FS with a seeded fault
// schedule — fail the Nth write, short writes, ENOSPC, fsync errors,
// injected latency — so dependency failures replay bit-for-bit in
// tests instead of needing a full disk or a dying drive.
//
// The Injector also serves as a generic fault source for non-filesystem
// seams: the Engine's assess-path hook fires OpAssess through the same
// rule table, so one seeded schedule can drive disk flapping and
// compute faults in a single chaos run.
//
// Determinism: rule evaluation draws from a rand.Rand seeded at New,
// under the Injector's lock, in rule order. For a deterministic
// operation sequence the injected fault sequence is therefore exactly
// reproducible from the seed; concurrent callers still get a
// per-seed-reproducible *distribution* of faults.
package faultinject

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"sync"
	"syscall"
	"time"
)

// Op classifies the injectable operations.
type Op uint8

// Operation classes. OpAssess is not a filesystem operation: it is the
// engine's assess-path hook, fired explicitly via Fire.
const (
	OpOpen Op = iota
	OpRead
	OpWrite
	OpSync
	OpTruncate
	OpRename
	OpRemove
	OpAssess
	opCount
)

var opNames = [opCount]string{
	OpOpen: "open", OpRead: "read", OpWrite: "write", OpSync: "sync",
	OpTruncate: "truncate", OpRename: "rename", OpRemove: "remove",
	OpAssess: "assess",
}

// String names the operation class ("write", "sync", ...).
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return "unknown"
}

// ErrInjected is the default injected failure. Rules may carry any
// error instead (ErrNoSpace, io.ErrShortWrite, a custom sentinel);
// tests distinguish injected faults from real ones by errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrNoSpace is an injected ENOSPC: it satisfies both
// errors.Is(err, ErrInjected) and errors.Is(err, syscall.ENOSPC).
var ErrNoSpace = &injectedError{msg: "faultinject: injected ENOSPC", under: syscall.ENOSPC}

type injectedError struct {
	msg   string
	under error
}

func (e *injectedError) Error() string { return e.msg }
func (e *injectedError) Unwrap() []error {
	return []error{ErrInjected, e.under}
}

// File is the file surface internal/store (and anything else riding the
// seam) needs. *os.File satisfies it.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
	Close() error
}

// FS is the filesystem surface. OS is the passthrough implementation;
// Injector wraps any FS with a fault schedule.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// OS is the real filesystem.
type OS struct{}

// OpenFile opens via os.OpenFile.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename renames via os.Rename.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove removes via os.Remove.
func (OS) Remove(name string) error { return os.Remove(name) }

// Rule is one entry in the fault schedule. A rule matches calls by
// operation class and (optionally) a path substring; whether a matching
// call fires is decided by Nth (deterministic: the Nth matching call,
// 1-based) or Prob (seeded coin flip per matching call). Times bounds
// how many calls a rule may fault in total (0 = Nth rules fire once,
// Prob rules fire without bound).
//
// A firing rule waits Delay, then fails the call with Err (ErrInjected
// when nil and Delay is zero; a rule with only a Delay is latency
// injection and lets the call proceed). Short applies to writes: half
// the buffer reaches the inner file before the error, modeling a
// partially applied write the way a filling disk produces one.
type Rule struct {
	Op    Op
	Path  string // substring match on the file path; "" matches all
	Nth   uint64 // fire on the Nth matching call (1-based)
	Prob  float64
	Times int
	Err   error
	Short bool
	Delay time.Duration
}

// rule is a Rule plus its live match/fire counters.
type rule struct {
	Rule
	matches uint64
	fires   int
}

// fault is one firing decision, applied by the caller after the
// Injector's lock is released (so injected latency never serializes
// unrelated operations).
type fault struct {
	err   error
	short bool
	delay time.Duration
}

// Stats is a point-in-time snapshot of the injector counters, keyed by
// operation-class name.
type Stats struct {
	Calls    map[string]uint64 `json:"calls"`
	Injected map[string]uint64 `json:"injected"`
	Delayed  uint64            `json:"delayed"`
}

// Injector wraps an FS with a mutable, seeded fault schedule. Safe for
// concurrent use; rules may be added and cleared while files are open
// (a cleared schedule is how tests model faults going away).
type Injector struct {
	inner FS

	mu       sync.Mutex
	rng      *rand.Rand
	rules    []*rule
	calls    [opCount]uint64
	injected [opCount]uint64
	delayed  uint64
}

// New wraps inner with an empty fault schedule drawing randomness from
// seed. Add rules with Add; a bare Injector is a passthrough.
func New(inner FS, seed int64, rules ...Rule) *Injector {
	in := &Injector{inner: inner, rng: rand.New(rand.NewSource(seed))}
	for _, r := range rules {
		in.Add(r)
	}
	return in
}

// Add appends a rule to the schedule.
func (in *Injector) Add(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &rule{Rule: r})
}

// Clear drops every rule — the faults have "gone away". Counters are
// kept; files already open keep injecting nothing from then on.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// Stats snapshots the call and injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := Stats{
		Calls:    make(map[string]uint64),
		Injected: make(map[string]uint64),
		Delayed:  in.delayed,
	}
	for op := Op(0); op < opCount; op++ {
		if in.calls[op] > 0 {
			s.Calls[op.String()] = in.calls[op]
		}
		if in.injected[op] > 0 {
			s.Injected[op.String()] = in.injected[op]
		}
	}
	return s
}

// InjectedTotal reports how many calls have been failed so far.
func (in *Injector) InjectedTotal() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, v := range in.injected {
		n += v
	}
	return n
}

// decide evaluates the schedule for one call and returns the fault to
// apply, or nil. The first matching rule that fires wins.
func (in *Injector) decide(op Op, path string) *fault {
	in.mu.Lock()
	in.calls[op]++
	var hit *fault
	for _, r := range in.rules {
		if r.Op != op {
			continue
		}
		if r.Path != "" && !contains(path, r.Path) {
			continue
		}
		r.matches++
		fires := false
		switch {
		case r.Nth > 0:
			limit := r.Times
			if limit <= 0 {
				limit = 1
			}
			fires = r.matches >= r.Nth && r.fires < limit
		case r.Prob > 0:
			fires = (r.Times <= 0 || r.fires < r.Times) && in.rng.Float64() < r.Prob
		}
		if !fires {
			continue
		}
		r.fires++
		err := r.Err
		if err == nil && r.Short {
			err = io.ErrShortWrite
		}
		if err == nil && r.Delay == 0 {
			err = ErrInjected
		}
		hit = &fault{err: err, short: r.Short, delay: r.Delay}
		break
	}
	if hit != nil {
		if hit.err != nil {
			in.injected[op]++
		}
		if hit.delay > 0 {
			in.delayed++
		}
	}
	in.mu.Unlock()
	if hit != nil && hit.delay > 0 {
		time.Sleep(hit.delay)
	}
	return hit
}

// contains reports whether s contains sub (strings.Contains without the
// import — the package stays std-lean for the zero-dep seam).
func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Fire evaluates the schedule for an arbitrary (non-filesystem) seam —
// the Engine's assess path fires OpAssess here — applying any injected
// delay and returning the injected error, or nil.
func (in *Injector) Fire(op Op, path string) error {
	if f := in.decide(op, path); f != nil {
		return f.err
	}
	return nil
}

// OpenFile opens through the schedule; the returned File injects on
// every subsequent operation.
func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if f := in.decide(OpOpen, name); f != nil && f.err != nil {
		return nil, f.err
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{in: in, f: f, name: name}, nil
}

// Rename renames through the schedule.
func (in *Injector) Rename(oldpath, newpath string) error {
	if f := in.decide(OpRename, newpath); f != nil && f.err != nil {
		return f.err
	}
	return in.inner.Rename(oldpath, newpath)
}

// Remove removes through the schedule.
func (in *Injector) Remove(name string) error {
	if f := in.decide(OpRemove, name); f != nil && f.err != nil {
		return f.err
	}
	return in.inner.Remove(name)
}

// file is an injecting File wrapper.
type file struct {
	in   *Injector
	f    File
	name string
}

func (w *file) Read(p []byte) (int, error) {
	if f := w.in.decide(OpRead, w.name); f != nil && f.err != nil {
		return 0, f.err
	}
	return w.f.Read(p)
}

func (w *file) ReadAt(p []byte, off int64) (int, error) {
	if f := w.in.decide(OpRead, w.name); f != nil && f.err != nil {
		return 0, f.err
	}
	return w.f.ReadAt(p, off)
}

// Write applies the schedule: a Short fault lands the first half of the
// buffer in the inner file before failing, so the on-disk state carries
// a genuinely torn frame the way a real ENOSPC mid-write would.
func (w *file) Write(p []byte) (int, error) {
	if f := w.in.decide(OpWrite, w.name); f != nil && f.err != nil {
		n := 0
		if f.short && len(p) > 0 {
			n, _ = w.f.Write(p[:len(p)/2])
		}
		return n, f.err
	}
	return w.f.Write(p)
}

func (w *file) Sync() error {
	if f := w.in.decide(OpSync, w.name); f != nil && f.err != nil {
		return f.err
	}
	return w.f.Sync()
}

func (w *file) Truncate(size int64) error {
	if f := w.in.decide(OpTruncate, w.name); f != nil && f.err != nil {
		return f.err
	}
	return w.f.Truncate(size)
}

func (w *file) Seek(offset int64, whence int) (int64, error) { return w.f.Seek(offset, whence) }
func (w *file) Stat() (os.FileInfo, error)                   { return w.f.Stat() }
func (w *file) Close() error                                 { return w.f.Close() }
