// Package report renders the tables and figures of the reproduction as
// plain text: aligned tables, horizontal bar charts, heatmaps, percentage
// splits, and sparklines. Every experiment binary and benchmark prints
// through this package so outputs stay uniform and diffable.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; short rows are padded, long rows truncated to the
// header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len([]rune(h))
	}
	for _, r := range t.rows {
		for i, c := range r {
			if l := len([]rune(c)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Bar renders a horizontal bar scaled to width characters for a value in
// [0, max]. Negative values render a left-marked bar.
func Bar(value, max float64, width int) string {
	if width <= 0 || max <= 0 {
		return ""
	}
	v := math.Abs(value)
	n := int(math.Round(v / max * float64(width)))
	if n > width {
		n = width
	}
	bar := strings.Repeat("█", n) + strings.Repeat("·", width-n)
	if value < 0 {
		return "-" + bar
	}
	return " " + bar
}

// BarChart renders labeled horizontal bars with values.
func BarChart(title string, labels []string, values []float64, unit string, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	if len(labels) != len(values) || len(values) == 0 {
		return b.String()
	}
	maxLabel := 0
	maxVal := 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if v := math.Abs(values[i]); v > maxVal {
			maxVal = v
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	for i, l := range labels {
		fmt.Fprintf(&b, "%-*s %s %10.2f %s\n", maxLabel, l, Bar(values[i], maxVal, width), values[i], unit)
	}
	return b.String()
}

// Split renders a two-way percentage split (the Fig. 7 pies).
func Split(label string, aName string, a float64, bName string, b float64) string {
	total := a + b
	if total == 0 {
		return fmt.Sprintf("%s: no data\n", label)
	}
	pa := a / total * 100
	pb := b / total * 100
	const width = 40
	na := int(math.Round(pa / 100 * width))
	return fmt.Sprintf("%-10s [%s%s] %s %.0f%% / %s %.0f%%\n",
		label,
		strings.Repeat("#", na), strings.Repeat("=", width-na),
		aName, pa, bName, pb)
}

// Heatmap renders a 2D grid of values with a coarse shade ramp, plus row
// and column labels (the Fig. 4 ratio maps).
func Heatmap(title string, rowLabels, colLabels []string, grid [][]float64) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	if len(grid) == 0 {
		return b.String()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range grid {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	ramp := []rune(" .:-=+*#%@")
	shade := func(v float64) rune {
		if hi == lo {
			return ramp[len(ramp)/2]
		}
		i := int((v - lo) / (hi - lo) * float64(len(ramp)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(ramp) {
			i = len(ramp) - 1
		}
		return ramp[i]
	}
	maxRow := 0
	for _, r := range rowLabels {
		if len(r) > maxRow {
			maxRow = len(r)
		}
	}
	fmt.Fprintf(&b, "%-*s ", maxRow, "")
	for _, c := range colLabels {
		fmt.Fprintf(&b, "%s", c)
	}
	b.WriteString("\n")
	for i, row := range grid {
		label := ""
		if i < len(rowLabels) {
			label = rowLabels[i]
		}
		fmt.Fprintf(&b, "%-*s ", maxRow, label)
		for _, v := range row {
			b.WriteRune(shade(v))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "scale: %q=%.2f .. %q=%.2f\n", string(ramp[0]), lo, string(ramp[len(ramp)-1]), hi)
	return b.String()
}

// Sparkline renders a compact trend line for a series (the Fig. 11/12
// monthly curves).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		i := len(ramp) / 2
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
		}
		if i < 0 {
			i = 0
		}
		if i >= len(ramp) {
			i = len(ramp) - 1
		}
		b.WriteRune(ramp[i])
	}
	return b.String()
}

// Pct formats a fraction as a percentage string.
func Pct(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// Signed formats a savings percentage with its sign, matching the Fig. 14
// bars (positive = saving, negative = increase).
func Signed(pct float64) string { return fmt.Sprintf("%+.0f%%", pct) }
