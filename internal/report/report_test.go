package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Systems", "Name", "Location")
	tbl.AddRow("Frontier", "Oak Ridge")
	tbl.AddRow("Fugaku", "Kobe")
	out := tbl.String()
	if !strings.Contains(out, "== Systems ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "Frontier") || !strings.Contains(out, "Kobe") {
		t.Error("missing cells")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d, want 5:\n%s", len(lines), out)
	}
	// Columns align: both data rows have "Location" column starting at the
	// same offset.
	idx1 := strings.Index(lines[3], "Oak Ridge")
	idx2 := strings.Index(lines[4], "Kobe")
	if idx1 != idx2 {
		t.Errorf("columns misaligned: %d vs %d", idx1, idx2)
	}
}

func TestTableRowPadding(t *testing.T) {
	tbl := NewTable("", "A", "B", "C")
	tbl.AddRow("only")                   // short row padded
	tbl.AddRow("x", "y", "z", "ignored") // long row truncated
	out := tbl.String()
	if strings.Contains(out, "ignored") {
		t.Error("extra cell not truncated")
	}
	if !strings.Contains(out, "only") {
		t.Error("short row lost")
	}
}

func TestBar(t *testing.T) {
	full := Bar(10, 10, 10)
	if strings.Count(full, "█") != 10 {
		t.Errorf("full bar = %q", full)
	}
	half := Bar(5, 10, 10)
	if strings.Count(half, "█") != 5 {
		t.Errorf("half bar = %q", half)
	}
	neg := Bar(-5, 10, 10)
	if !strings.HasPrefix(neg, "-") {
		t.Errorf("negative bar should be marked: %q", neg)
	}
	over := Bar(100, 10, 10)
	if strings.Count(over, "█") != 10 {
		t.Error("overfull bar should clamp")
	}
	if Bar(1, 0, 10) != "" || Bar(1, 10, 0) != "" {
		t.Error("degenerate bars should be empty")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("EWF", []string{"hydro", "wind"}, []float64{16, 0.01}, "L/kWh", 20)
	if !strings.Contains(out, "hydro") || !strings.Contains(out, "wind") {
		t.Error("labels missing")
	}
	if !strings.Contains(out, "L/kWh") {
		t.Error("unit missing")
	}
	// Mismatched input renders just the title.
	out2 := BarChart("x", []string{"a"}, []float64{1, 2}, "", 10)
	if strings.Contains(out2, "a") {
		t.Error("mismatched chart should not render rows")
	}
	// All-zero values must not divide by zero.
	out3 := BarChart("z", []string{"a"}, []float64{0}, "", 10)
	if !strings.Contains(out3, "a") {
		t.Error("zero chart should still render")
	}
}

func TestSplit(t *testing.T) {
	out := Split("Marconi", "direct", 37, "indirect", 63)
	if !strings.Contains(out, "37%") || !strings.Contains(out, "63%") {
		t.Errorf("split percentages wrong: %q", out)
	}
	if !strings.Contains(Split("x", "a", 0, "b", 0), "no data") {
		t.Error("zero split should say no data")
	}
}

func TestHeatmap(t *testing.T) {
	grid := [][]float64{{0, 1}, {2, 3}}
	out := Heatmap("ratio", []string{"r1", "r2"}, []string{"a", "b"}, grid)
	if !strings.Contains(out, "r1") || !strings.Contains(out, "scale:") {
		t.Errorf("heatmap missing parts:\n%s", out)
	}
	// Constant grid doesn't crash on zero range.
	out2 := Heatmap("flat", []string{"r"}, []string{"c"}, [][]float64{{5}})
	if !strings.Contains(out2, "flat") {
		t.Error("flat heatmap broken")
	}
	if Heatmap("e", nil, nil, nil) != "== e ==\n" {
		t.Error("empty heatmap should render title only")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline length = %d, want 4", len([]rune(s)))
	}
	first, last := []rune(s)[0], []rune(s)[3]
	if first >= last {
		t.Errorf("rising series should rise: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
	flat := Sparkline([]float64{2, 2})
	if len([]rune(flat)) != 2 {
		t.Error("flat sparkline broken")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.5) != "50.0%" {
		t.Errorf("Pct = %q", Pct(0.5))
	}
	if Signed(-94) != "-94%" {
		t.Errorf("Signed = %q", Signed(-94))
	}
	if Signed(80) != "+80%" {
		t.Errorf("Signed = %q", Signed(80))
	}
}
