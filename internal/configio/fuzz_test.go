package configio

import (
	"strings"
	"testing"
)

// FuzzLoad hardens the JSON config loader: arbitrary input must either
// error cleanly or produce a configuration that validates end to end.
func FuzzLoad(f *testing.F) {
	f.Add(validDoc)
	f.Add(`{}`)
	f.Add(`{"system":{}}`)
	f.Add(`{"system":{"name":"x","nodes":-1}}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"system":{"name":"x","nodes":1,"cpu":{"dies":[{"area_mm2":-1}]}}}`)
	f.Fuzz(func(t *testing.T, data string) {
		cfg, err := Load(strings.NewReader(data))
		if err != nil {
			return
		}
		if vErr := cfg.Validate(); vErr != nil {
			t.Fatalf("Load returned invalid config without error: %v", vErr)
		}
	})
}
