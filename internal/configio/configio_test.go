package configio

import (
	"strings"
	"testing"
)

const validDoc = `{
  "system": {
    "name": "TestCluster",
    "nodes": 100,
    "cpu": {"catalog": "AMD EPYC 7532"},
    "cpus_per_node": 2,
    "gpu": {"catalog": "NVIDIA A100 PCIe"},
    "gpus_per_node": 4,
    "dram_gb_per_node": 512,
    "node_overhead_w": 400,
    "storage": [{"name": "scratch", "kind": "ssd", "capacity_pb": 1.5}],
    "peak_power_mw": 1.2,
    "pue": 1.3
  },
  "site_name": "Lemont",
  "region": "Illinois",
  "seed": 7
}`

func TestLoadValidDocument(t *testing.T) {
	cfg, err := Load(strings.NewReader(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.System.Name != "TestCluster" || cfg.System.Nodes != 100 {
		t.Errorf("system wrong: %+v", cfg.System)
	}
	if cfg.System.Node.CPU.Name != "AMD EPYC 7532" {
		t.Error("catalog CPU not resolved")
	}
	if cfg.System.Node.GPUs != 4 {
		t.Error("GPU count wrong")
	}
	if cfg.Site.Name != "Lemont" || cfg.Region.Name != "Illinois" {
		t.Error("site/region wrong")
	}
	if cfg.Seed != 7 {
		t.Error("seed lost")
	}
	// Scarcity falls back to the known Lemont factor.
	if cfg.Scarcity.Direct != 0.62 {
		t.Errorf("scarcity = %v, want Lemont's 0.62", cfg.Scarcity.Direct)
	}
	// The assembled config actually assesses.
	a, err := cfg.Assess()
	if err != nil {
		t.Fatal(err)
	}
	if a.Operational() <= 0 {
		t.Error("assessment degenerate")
	}
}

func TestInlineProcessorAndSite(t *testing.T) {
	doc := `{
	  "system": {
	    "name": "InlineBox",
	    "nodes": 4,
	    "cpu": {"name": "MyChip", "dies": [{"area_mm2": 400, "node_nm": 5, "count": 2}], "tdp_w": 250, "ic_count": 12},
	    "cpus_per_node": 1,
	    "dram_gb_per_node": 128,
	    "peak_power_mw": 0.01,
	    "pue": 1.2
	  },
	  "site": {"name": "MySite", "mean_temp_c": 18, "seasonal_amp_c": 9, "diurnal_amp_c": 5, "mean_rh": 55},
	  "region": "Texas",
	  "wsi": 0.8
	}`
	cfg, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.System.Node.CPU.Name != "MyChip" || len(cfg.System.Node.CPU.Dies) != 1 {
		t.Error("inline processor wrong")
	}
	if cfg.Site.Name != "MySite" {
		t.Error("inline site wrong")
	}
	if cfg.Region.Name != "Texas" {
		t.Error("candidate region not resolved")
	}
	if float64(cfg.Scarcity.Direct) != 0.8 {
		t.Error("explicit WSI ignored")
	}
	// Defaults applied.
	if cfg.Site.WarmestDay != 200 || cfg.Site.NoiseStd != 1.8 {
		t.Error("site defaults not applied")
	}
}

func TestDemandAndEmbodiedOverrides(t *testing.T) {
	doc := `{
	  "system": {
	    "name": "Box", "nodes": 2,
	    "cpu": {"catalog": "Fujitsu A64FX"}, "cpus_per_node": 1,
	    "dram_gb_per_node": 32, "peak_power_mw": 0.001, "pue": 1.1
	  },
	  "site_name": "Kobe", "region": "Japan",
	  "demand": {"mean": 0.5},
	  "yield": 0.7,
	  "fab_ewf_l_per_kwh": 3.5
	}`
	cfg, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Demand.Mean != 0.5 {
		t.Error("demand override ignored")
	}
	if cfg.Embodied.Yield != 0.7 || float64(cfg.Embodied.FabEWF) != 3.5 {
		t.Error("embodied overrides ignored")
	}
}

func TestLoadRejects(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"unknown field":   `{"bogus": 1}`,
		"no site":         `{"system":{"name":"x","nodes":1,"cpu":{"catalog":"Fujitsu A64FX"},"cpus_per_node":1,"dram_gb_per_node":1,"peak_power_mw":1,"pue":1.1},"region":"Japan"}`,
		"unknown region":  `{"system":{"name":"x","nodes":1,"cpu":{"catalog":"Fujitsu A64FX"},"cpus_per_node":1,"dram_gb_per_node":1,"peak_power_mw":1,"pue":1.1},"site_name":"Kobe","region":"Atlantis"}`,
		"unknown site":    `{"system":{"name":"x","nodes":1,"cpu":{"catalog":"Fujitsu A64FX"},"cpus_per_node":1,"dram_gb_per_node":1,"peak_power_mw":1,"pue":1.1},"site_name":"Atlantis","region":"Japan"}`,
		"unknown catalog": `{"system":{"name":"x","nodes":1,"cpu":{"catalog":"Intel 4004"},"cpus_per_node":1,"dram_gb_per_node":1,"peak_power_mw":1,"pue":1.1},"site_name":"Kobe","region":"Japan"}`,
		"bad storage":     `{"system":{"name":"x","nodes":1,"cpu":{"catalog":"Fujitsu A64FX"},"cpus_per_node":1,"dram_gb_per_node":1,"storage":[{"name":"s","kind":"tape","capacity_pb":1}],"peak_power_mw":1,"pue":1.1},"site_name":"Kobe","region":"Japan"}`,
		"bad pue":         `{"system":{"name":"x","nodes":1,"cpu":{"catalog":"Fujitsu A64FX"},"cpus_per_node":1,"dram_gb_per_node":1,"peak_power_mw":1,"pue":0.8},"site_name":"Kobe","region":"Japan"}`,
		"no name":         `{"system":{"nodes":1,"cpu":{"catalog":"Fujitsu A64FX"},"cpus_per_node":1,"dram_gb_per_node":1,"peak_power_mw":1,"pue":1.1},"site_name":"Kobe","region":"Japan"}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDefaultSeed(t *testing.T) {
	doc := strings.Replace(validDoc, `"seed": 7`, `"seed": 0`, 1)
	cfg, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 {
		t.Errorf("default seed = %d, want 42", cfg.Seed)
	}
}
