// Package configio loads ThirstyFLOPS assessments from JSON documents, so
// operators can describe their own machine, site, and grid without
// writing Go. Processors and grids can reference the built-in catalog by
// name or be specified inline; anything omitted falls back to the Table 2
// defaults.
package configio

import (
	"encoding/json"
	"fmt"
	"io"

	"thirstyflops/internal/core"
	"thirstyflops/internal/embodied"
	"thirstyflops/internal/energy"
	"thirstyflops/internal/hardware"
	"thirstyflops/internal/jobs"
	"thirstyflops/internal/units"
	"thirstyflops/internal/weather"
	"thirstyflops/internal/wsi"
	"thirstyflops/internal/wue"
)

// Document is the JSON shape of a custom assessment.
type Document struct {
	System   SystemDoc  `json:"system"`
	Site     *SiteDoc   `json:"site,omitempty"`      // nil: resolve by name
	SiteName string     `json:"site_name,omitempty"` // one of the bundled sites
	Region   string     `json:"region"`              // bundled region name
	WSI      *float64   `json:"wsi,omitempty"`       // direct scarcity factor
	Demand   *DemandDoc `json:"demand,omitempty"`
	Seed     uint64     `json:"seed,omitempty"`
	Yield    *float64   `json:"yield,omitempty"`
	FabEWF   *float64   `json:"fab_ewf_l_per_kwh,omitempty"`
}

// SystemDoc describes the machine.
type SystemDoc struct {
	Name          string        `json:"name"`
	Nodes         int           `json:"nodes"`
	CPU           ProcessorDoc  `json:"cpu"`
	CPUsPerNode   int           `json:"cpus_per_node"`
	GPU           *ProcessorDoc `json:"gpu,omitempty"`
	GPUsPerNode   int           `json:"gpus_per_node,omitempty"`
	DRAMGBPerNode float64       `json:"dram_gb_per_node"`
	NodeOverheadW float64       `json:"node_overhead_w,omitempty"`
	Storage       []StorageDoc  `json:"storage,omitempty"`
	PeakPowerMW   float64       `json:"peak_power_mw"`
	RmaxPFLOPS    float64       `json:"rmax_pflops,omitempty"`
	IdleFraction  float64       `json:"idle_fraction,omitempty"`
	PUE           float64       `json:"pue"`
	StartYear     int           `json:"start_year,omitempty"`
}

// ProcessorDoc names a catalog processor or defines one inline.
type ProcessorDoc struct {
	Catalog string   `json:"catalog,omitempty"` // e.g. "AMD EPYC 7532"
	Name    string   `json:"name,omitempty"`
	Dies    []DieDoc `json:"dies,omitempty"`
	TDPW    float64  `json:"tdp_w,omitempty"`
	HBMGB   float64  `json:"hbm_gb,omitempty"`
	ICCount int      `json:"ic_count,omitempty"`
	Kind    string   `json:"kind,omitempty"` // "cpu" or "gpu"
}

// DieDoc is one die of an inline processor.
type DieDoc struct {
	AreaMM2 float64 `json:"area_mm2"`
	NodeNM  float64 `json:"node_nm"`
	Count   int     `json:"count"`
}

// StorageDoc is one storage pool.
type StorageDoc struct {
	Name       string  `json:"name"`
	Kind       string  `json:"kind"` // "hdd" or "ssd"
	CapacityPB float64 `json:"capacity_pb"`
}

// SiteDoc is an inline climatology.
type SiteDoc struct {
	Name          string  `json:"name"`
	Country       string  `json:"country,omitempty"`
	MeanTempC     float64 `json:"mean_temp_c"`
	SeasonalAmpC  float64 `json:"seasonal_amp_c"`
	DiurnalAmpC   float64 `json:"diurnal_amp_c"`
	MeanRH        float64 `json:"mean_rh"`
	SeasonalRHAmp float64 `json:"seasonal_rh_amp,omitempty"`
	WarmestDay    float64 `json:"warmest_day,omitempty"`
	NoiseStdC     float64 `json:"noise_std_c,omitempty"`
}

// DemandDoc overrides the utilization model.
type DemandDoc struct {
	Mean        float64 `json:"mean"`
	DailySwing  float64 `json:"daily_swing,omitempty"`
	WeeklySwing float64 `json:"weekly_swing,omitempty"`
	CycleSwing  float64 `json:"cycle_swing,omitempty"`
	NoiseStd    float64 `json:"noise_std,omitempty"`
}

// catalogProcessors indexes the built-in packages by name.
func catalogProcessors() map[string]hardware.Processor {
	out := map[string]hardware.Processor{}
	for _, p := range []hardware.Processor{
		hardware.Power9, hardware.V100, hardware.A64FX,
		hardware.EPYC7532, hardware.A100, hardware.EPYC7A53, hardware.MI250X,
	} {
		out[p.Name] = p
	}
	return out
}

// Load parses a JSON document and assembles a validated core.Config.
func Load(r io.Reader) (core.Config, error) {
	var doc Document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return core.Config{}, fmt.Errorf("configio: %w", err)
	}
	return Build(doc)
}

// Build assembles a validated core.Config from a parsed document.
func Build(doc Document) (core.Config, error) {
	sys, err := buildSystem(doc.System)
	if err != nil {
		return core.Config{}, err
	}

	site, err := resolveSite(doc, sys)
	if err != nil {
		return core.Config{}, err
	}
	sys.SiteName = site.Name

	region, ok := energy.Regions()[doc.Region]
	if !ok {
		for _, r := range []energy.Region{energy.PacificNorthwest(), energy.Texas(), energy.Arizona()} {
			if r.Name == doc.Region {
				region, ok = r, true
				break
			}
		}
	}
	if !ok {
		return core.Config{}, fmt.Errorf("configio: unknown region %q", doc.Region)
	}
	sys.Region = region.Name

	scarcity := wsi.Profile{Direct: 0.3}
	if doc.WSI != nil {
		scarcity.Direct = units.WSI(*doc.WSI)
	} else if w, err := wsi.SiteWSI(site.Name); err == nil {
		scarcity.Direct = w
	}

	demand := jobs.DefaultDemand()
	if doc.Demand != nil {
		demand.Mean = doc.Demand.Mean
		if doc.Demand.DailySwing > 0 {
			demand.DailySwing = doc.Demand.DailySwing
		}
		if doc.Demand.WeeklySwing > 0 {
			demand.WeeklySwing = doc.Demand.WeeklySwing
		}
		if doc.Demand.CycleSwing > 0 {
			demand.CycleSwing = doc.Demand.CycleSwing
		}
		if doc.Demand.NoiseStd > 0 {
			demand.NoiseStd = doc.Demand.NoiseStd
		}
	}

	emb := embodied.DefaultParams()
	if doc.Yield != nil {
		emb.Yield = *doc.Yield
	}
	if doc.FabEWF != nil {
		emb.FabEWF = units.LPerKWh(*doc.FabEWF)
	}

	seed := doc.Seed
	if seed == 0 {
		seed = 42
	}

	cfg := core.Config{
		System:   sys,
		Site:     site,
		Region:   region,
		Curve:    wue.DefaultCurve(),
		Demand:   demand,
		Embodied: emb,
		Scarcity: scarcity,
		Seed:     seed,
		Year:     2023,
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, fmt.Errorf("configio: %w", err)
	}
	return cfg, nil
}

func resolveSite(doc Document, sys hardware.System) (weather.Site, error) {
	switch {
	case doc.Site != nil:
		s := weather.Site{
			Name:          doc.Site.Name,
			Country:       doc.Site.Country,
			MeanTemp:      units.Celsius(doc.Site.MeanTempC),
			SeasonalAmp:   units.Celsius(doc.Site.SeasonalAmpC),
			DiurnalAmp:    units.Celsius(doc.Site.DiurnalAmpC),
			MeanRH:        units.RelativeHumidity(doc.Site.MeanRH),
			SeasonalRHAmp: doc.Site.SeasonalRHAmp,
			WarmestDay:    doc.Site.WarmestDay,
			NoiseStd:      doc.Site.NoiseStdC,
		}
		if s.WarmestDay == 0 {
			s.WarmestDay = 200
		}
		if s.NoiseStd == 0 {
			s.NoiseStd = 1.8
		}
		return s, nil
	case doc.SiteName != "":
		s, ok := weather.Sites()[doc.SiteName]
		if !ok {
			return weather.Site{}, fmt.Errorf("configio: unknown site %q", doc.SiteName)
		}
		return s, nil
	default:
		return weather.Site{}, fmt.Errorf("configio: no site given (site or site_name)")
	}
}

func buildSystem(d SystemDoc) (hardware.System, error) {
	if d.Name == "" {
		return hardware.System{}, fmt.Errorf("configio: system has no name")
	}
	cpu, err := buildProcessor(d.CPU, hardware.CPU)
	if err != nil {
		return hardware.System{}, fmt.Errorf("configio: cpu: %w", err)
	}
	node := hardware.Node{
		CPUs: max(1, d.CPUsPerNode), CPU: cpu,
		DRAMGB:    units.GB(d.DRAMGBPerNode),
		OverheadW: units.Watts(d.NodeOverheadW),
	}
	if d.GPU != nil {
		gpu, err := buildProcessor(*d.GPU, hardware.GPU)
		if err != nil {
			return hardware.System{}, fmt.Errorf("configio: gpu: %w", err)
		}
		node.GPU = gpu
		node.GPUs = max(1, d.GPUsPerNode)
	}
	var pools []hardware.StoragePool
	for _, s := range d.Storage {
		kind := hardware.HDD
		switch s.Kind {
		case "hdd":
		case "ssd":
			kind = hardware.SSD
		default:
			return hardware.System{}, fmt.Errorf("configio: storage kind %q (want hdd or ssd)", s.Kind)
		}
		pools = append(pools, hardware.StoragePool{
			Name: s.Name, Kind: kind, Capacity: units.PBytes(s.CapacityPB),
		})
	}
	idle := d.IdleFraction
	if idle == 0 {
		idle = 0.3
	}
	sys := hardware.System{
		Name: d.Name, Operator: "custom", StartYear: d.StartYear,
		Nodes: d.Nodes, Node: node, Storage: pools,
		PeakPower:    units.MW(d.PeakPowerMW),
		RmaxPFLOPS:   d.RmaxPFLOPS,
		IdleFraction: idle,
		PUE:          units.PUE(d.PUE),
	}
	return sys, sys.Validate()
}

func buildProcessor(d ProcessorDoc, kind hardware.ProcessorKind) (hardware.Processor, error) {
	if d.Catalog != "" {
		p, ok := catalogProcessors()[d.Catalog]
		if !ok {
			return hardware.Processor{}, fmt.Errorf("unknown catalog processor %q", d.Catalog)
		}
		return p, nil
	}
	p := hardware.Processor{
		Name: d.Name, Kind: kind,
		TDP:     units.Watts(d.TDPW),
		HBMGB:   units.GB(d.HBMGB),
		ICCount: d.ICCount,
	}
	if d.Kind == "gpu" {
		p.Kind = hardware.GPU
	}
	if p.ICCount == 0 {
		p.ICCount = 9
	}
	for _, die := range d.Dies {
		p.Dies = append(p.Dies, hardware.Die{
			Area:  units.SquareMM(die.AreaMM2),
			Node:  units.Nanometers(die.NodeNM),
			Count: die.Count,
		})
	}
	return p, p.Validate()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
