// Package fingerprint derives compact cache keys from configuration
// values. It replaces per-request JSON marshalling with a streaming
// SHA-256 over a canonical binary encoding: every writer method appends a
// fixed-width (or length-prefixed) representation to a pooled scratch
// buffer that is hashed in one pass, so fingerprinting allocates nothing
// in steady state.
//
// Domain types expose `Fingerprint(h *fingerprint.Hasher)` methods that
// write every field feeding the simulation; composite types call their
// children in declaration order. Because each scalar occupies a fixed
// width and variable-width values are length-prefixed, two distinct field
// sequences cannot encode to the same byte stream.
package fingerprint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"
)

// Key is the 32-byte fingerprint used as a cache key. It is comparable
// and therefore usable as a map key without further encoding.
type Key [sha256.Size]byte

// Shard returns a small deterministic shard index in [0, n) derived from
// the key. n must be a power of two. Folding a full 64-bit prefix (not a
// single byte) keeps every shard reachable for any practical n.
func (k Key) Shard(n int) int {
	return int(binary.LittleEndian.Uint64(k[:8]) & uint64(n-1))
}

// Compare orders keys lexicographically, returning -1, 0, or +1. The
// order carries no semantic meaning — it exists so key sequences can be
// sorted deterministically (the sweep planner clusters requests whose
// substrate component keys share a prefix).
func (k Key) Compare(o Key) int { return bytes.Compare(k[:], o[:]) }

// Hasher accumulates a canonical encoding into a scratch buffer. Obtain
// one with New, write fields, call Sum, and Release it back to the pool.
type Hasher struct {
	buf []byte
}

var pool = sync.Pool{
	New: func() any { return &Hasher{buf: make([]byte, 0, 1024)} },
}

// New returns an empty Hasher from the pool.
func New() *Hasher {
	h := pool.Get().(*Hasher)
	h.buf = h.buf[:0]
	return h
}

// Release returns the Hasher to the pool. The Hasher must not be used
// afterwards.
func (h *Hasher) Release() { pool.Put(h) }

// Reset clears the accumulated encoding so one pooled Hasher can derive
// several keys (Sum, Reset, write, Sum, ...) without pool round trips.
func (h *Hasher) Reset() { h.buf = h.buf[:0] }

// Sum hashes the accumulated encoding.
func (h *Hasher) Sum() Key { return sha256.Sum256(h.buf) }

// Uint64 appends a fixed-width unsigned integer.
func (h *Hasher) Uint64(v uint64) {
	h.buf = binary.LittleEndian.AppendUint64(h.buf, v)
}

// Int appends a fixed-width signed integer.
func (h *Hasher) Int(v int) { h.Uint64(uint64(v)) }

// Float appends the IEEE-754 bit pattern of v. Distinct bit patterns
// (including negative zero vs zero) fingerprint differently, matching the
// bit-exact memoization contract.
func (h *Hasher) Float(v float64) { h.Uint64(math.Float64bits(v)) }

// Bool appends one byte.
func (h *Hasher) Bool(v bool) {
	if v {
		h.buf = append(h.buf, 1)
	} else {
		h.buf = append(h.buf, 0)
	}
}

// Bytes appends a length-prefixed byte string — used to fold an already
// derived Key into a composite fingerprint (the Engine's live-window
// keys chain the configuration key with the stream identity and epoch).
func (h *Hasher) Bytes(b []byte) {
	h.Int(len(b))
	h.buf = append(h.buf, b...)
}

// String appends a length-prefixed string, so concatenation ambiguity
// ("ab"+"c" vs "a"+"bc") cannot produce colliding encodings.
func (h *Hasher) String(s string) {
	h.Int(len(s))
	h.buf = append(h.buf, s...)
}

// Len appends a collection length, delimiting variable-size sections.
func (h *Hasher) Len(n int) { h.Int(n) }
