package fingerprint

import (
	"math"
	"testing"
)

func sumOf(write func(h *Hasher)) Key {
	h := New()
	defer h.Release()
	write(h)
	return h.Sum()
}

func TestDeterministic(t *testing.T) {
	a := sumOf(func(h *Hasher) { h.String("x"); h.Float(1.5); h.Int(-3) })
	b := sumOf(func(h *Hasher) { h.String("x"); h.Float(1.5); h.Int(-3) })
	if a != b {
		t.Error("identical writes produced different keys")
	}
}

func TestFieldSensitivity(t *testing.T) {
	base := sumOf(func(h *Hasher) { h.String("x"); h.Float(1.5); h.Bool(true) })
	for name, write := range map[string]func(h *Hasher){
		"string":  func(h *Hasher) { h.String("y"); h.Float(1.5); h.Bool(true) },
		"float":   func(h *Hasher) { h.String("x"); h.Float(1.6); h.Bool(true) },
		"bool":    func(h *Hasher) { h.String("x"); h.Float(1.5); h.Bool(false) },
		"missing": func(h *Hasher) { h.String("x"); h.Float(1.5) },
	} {
		if sumOf(write) == base {
			t.Errorf("%s change did not alter the key", name)
		}
	}
}

func TestStringLengthPrefixPreventsAmbiguity(t *testing.T) {
	a := sumOf(func(h *Hasher) { h.String("ab"); h.String("c") })
	b := sumOf(func(h *Hasher) { h.String("a"); h.String("bc") })
	if a == b {
		t.Error(`"ab"+"c" and "a"+"bc" collided`)
	}
}

func TestFloatBitPatterns(t *testing.T) {
	zero := sumOf(func(h *Hasher) { h.Float(0) })
	negZero := sumOf(func(h *Hasher) { h.Float(math.Copysign(0, -1)) })
	if zero == negZero {
		t.Error("0 and -0 collided; fingerprints are bit-pattern-exact")
	}
}

func TestShardInRange(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 512} {
		k := sumOf(func(h *Hasher) { h.Uint64(uint64(n)) })
		if s := k.Shard(n); s < 0 || s >= n {
			t.Errorf("Shard(%d) = %d out of range", n, s)
		}
	}
}

func TestShardReachesEveryIndexBeyondOneByte(t *testing.T) {
	// With shard counts above 256 the fold must still reach indices a
	// single key byte never could.
	const n = 512
	seen := make(map[int]bool)
	for i := 0; i < 8192; i++ {
		i := i
		k := sumOf(func(h *Hasher) { h.Int(i) })
		seen[k.Shard(n)] = true
	}
	if len(seen) < n*9/10 {
		t.Errorf("8192 keys covered only %d of %d shards", len(seen), n)
	}
	high := false
	for s := range seen {
		if s >= 256 {
			high = true
			break
		}
	}
	if !high {
		t.Error("no shard index above 255 was ever produced")
	}
}

func TestPoolReuseStartsClean(t *testing.T) {
	h := New()
	h.String("leftover state")
	h.Release()
	a := sumOf(func(h *Hasher) { h.Int(1) })
	b := sumOf(func(h *Hasher) { h.Int(1) })
	if a != b {
		t.Error("pooled hasher leaked state between uses")
	}
}

func BenchmarkHasherSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := New()
		h.String("Frontier")
		for f := 0; f < 24; f++ {
			h.Float(float64(f) * 1.5)
		}
		h.Uint64(42)
		_ = h.Sum()
		h.Release()
	}
}
