// Package units defines the typed physical quantities used throughout
// ThirstyFLOPS: water volumes, energy, power, temperatures, areas, data
// capacities, and the derived sustainability intensities (L/kWh, gCO2/kWh).
//
// Every quantity is a defined float64 type so the compiler rejects unit
// mix-ups such as adding litres to kilowatt-hours. Arithmetic that crosses
// unit boundaries goes through explicit, documented constructors and
// conversion methods.
package units

import (
	"fmt"
	"math"
)

// Liters is a volume of water in litres. All water-footprint accounting in
// ThirstyFLOPS is expressed in litres; helpers convert to the gallon and
// megalitre views used in the paper's motivation section.
type Liters float64

// Common volume scale factors.
const (
	LitersPerGallon    = 3.785411784
	LitersPerMegaliter = 1e6
)

// Gallons converts the volume to US gallons.
func (l Liters) Gallons() float64 { return float64(l) / LitersPerGallon }

// Megaliters converts the volume to megalitres (10^6 L).
func (l Liters) Megaliters() float64 { return float64(l) / LitersPerMegaliter }

// String renders the volume with an automatically chosen SI-ish scale;
// negative volumes (savings deltas) keep their sign.
func (l Liters) String() string {
	v := float64(l)
	mag := math.Abs(v)
	switch {
	case mag >= 1e9:
		return fmt.Sprintf("%.2f GL", v/1e9)
	case mag >= 1e6:
		return fmt.Sprintf("%.2f ML", v/1e6)
	case mag >= 1e3:
		return fmt.Sprintf("%.2f kL", v/1e3)
	default:
		return fmt.Sprintf("%.2f L", v)
	}
}

// KWh is energy in kilowatt-hours, the unit of E in Eq. 6-8 of the paper.
type KWh float64

// MWh converts to megawatt-hours.
func (e KWh) MWh() float64 { return float64(e) / 1e3 }

// GWh converts to gigawatt-hours.
func (e KWh) GWh() float64 { return float64(e) / 1e6 }

// Joules converts to joules.
func (e KWh) Joules() float64 { return float64(e) * 3.6e6 }

// String renders the energy with an automatically chosen scale.
func (e KWh) String() string {
	v := float64(e)
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2f GWh", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2f MWh", v/1e3)
	default:
		return fmt.Sprintf("%.2f kWh", v)
	}
}

// Watts is instantaneous electrical power.
type Watts float64

// Megawatts converts to MW.
func (w Watts) Megawatts() float64 { return float64(w) / 1e6 }

// Kilowatts converts to kW.
func (w Watts) Kilowatts() float64 { return float64(w) / 1e3 }

// String renders the power with an automatically chosen scale.
func (w Watts) String() string {
	v := float64(w)
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2f MW", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2f kW", v/1e3)
	default:
		return fmt.Sprintf("%.1f W", v)
	}
}

// MW constructs Watts from a megawatt count.
func MW(mw float64) Watts { return Watts(mw * 1e6) }

// KW constructs Watts from a kilowatt count.
func KW(kw float64) Watts { return Watts(kw * 1e3) }

// EnergyOver returns the energy delivered by drawing power w for the given
// number of hours.
func (w Watts) EnergyOver(hours float64) KWh {
	return KWh(float64(w) / 1e3 * hours)
}

// Celsius is a temperature in degrees Celsius. Wet-bulb temperatures, the
// input to the WUE model, are Celsius values.
type Celsius float64

// Fahrenheit converts to degrees Fahrenheit.
func (c Celsius) Fahrenheit() float64 { return float64(c)*9/5 + 32 }

// String renders the temperature.
func (c Celsius) String() string { return fmt.Sprintf("%.1f°C", float64(c)) }

// RelativeHumidity is a relative humidity fraction in percent (0-100).
type RelativeHumidity float64

// Clamp returns the humidity clipped to the physical [0, 100] range.
func (h RelativeHumidity) Clamp() RelativeHumidity {
	if h < 0 {
		return 0
	}
	if h > 100 {
		return 100
	}
	return h
}

// SquareMM is an area in square millimetres (die areas in Eq. 4).
type SquareMM float64

// SquareCM converts to square centimetres, the unit the per-area water
// factors (UPW, PCW, WPA) are expressed in.
func (a SquareMM) SquareCM() float64 { return float64(a) / 100 }

// GB is a data capacity in gigabytes (memory/storage capacities in Eq. 5).
type GB float64

// TB converts to terabytes.
func (g GB) TB() float64 { return float64(g) / 1e3 }

// PB converts to petabytes.
func (g GB) PB() float64 { return float64(g) / 1e6 }

// TBytes constructs GB from a terabyte count.
func TBytes(tb float64) GB { return GB(tb * 1e3) }

// PBytes constructs GB from a petabyte count.
func PBytes(pb float64) GB { return GB(pb * 1e6) }

// String renders the capacity with an automatically chosen scale.
func (g GB) String() string {
	v := float64(g)
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1f PB", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1f TB", v/1e3)
	default:
		return fmt.Sprintf("%.0f GB", v)
	}
}

// GramsCO2 is a mass of CO2-equivalent emissions in grams.
type GramsCO2 float64

// Kilograms converts to kilograms.
func (g GramsCO2) Kilograms() float64 { return float64(g) / 1e3 }

// Tonnes converts to metric tonnes.
func (g GramsCO2) Tonnes() float64 { return float64(g) / 1e6 }

// String renders the emission mass with an automatically chosen scale.
func (g GramsCO2) String() string {
	v := float64(g)
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2f tCO2e", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2f kgCO2e", v/1e3)
	default:
		return fmt.Sprintf("%.1f gCO2e", v)
	}
}

// LPerKWh is a water intensity: litres of water per kilowatt-hour. It is the
// unit of WUE, EWF, and WI (Eq. 6-8).
type LPerKWh float64

// Times scales an energy amount by the intensity, yielding water volume.
func (wi LPerKWh) Times(e KWh) Liters { return Liters(float64(wi) * float64(e)) }

// String renders the intensity.
func (wi LPerKWh) String() string { return fmt.Sprintf("%.3f L/kWh", float64(wi)) }

// GCO2PerKWh is a carbon intensity: grams CO2-eq per kilowatt-hour.
type GCO2PerKWh float64

// Times scales an energy amount by the intensity, yielding emitted mass.
func (ci GCO2PerKWh) Times(e KWh) GramsCO2 { return GramsCO2(float64(ci) * float64(e)) }

// String renders the carbon intensity.
func (ci GCO2PerKWh) String() string { return fmt.Sprintf("%.1f gCO2/kWh", float64(ci)) }

// LPerSqCM is a water factor per unit die area (UPW, PCW, WPA in Eq. 4).
type LPerSqCM float64

// LPerGB is a water factor per unit capacity (WPC in Eq. 5).
type LPerGB float64

// PUE is a power usage effectiveness ratio (total facility energy over IT
// energy, >= 1 for physical facilities).
type PUE float64

// Valid reports whether the PUE is physically meaningful (>= 1).
func (p PUE) Valid() bool { return p >= 1 }

// WSI is a water scarcity index weighting factor. AWARE-style indices range
// over roughly [0.1, 100]; AWARE-global site factors in the paper's Fig. 8
// are sub-1 values.
type WSI float64

// Nanometers is a semiconductor process node size.
type Nanometers float64
