package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLitersConversions(t *testing.T) {
	l := Liters(LitersPerGallon)
	if !almostEqual(l.Gallons(), 1, 1e-12) {
		t.Errorf("Gallons() = %v, want 1", l.Gallons())
	}
	if !almostEqual(Liters(2e6).Megaliters(), 2, 1e-12) {
		t.Errorf("Megaliters() = %v, want 2", Liters(2e6).Megaliters())
	}
}

func TestLitersString(t *testing.T) {
	tests := []struct {
		v    Liters
		want string
	}{
		{Liters(0.5), "0.50 L"},
		{Liters(1500), "1.50 kL"},
		{Liters(2.5e6), "2.50 ML"},
		{Liters(3e9), "3.00 GL"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("Liters(%v).String() = %q, want %q", float64(tt.v), got, tt.want)
		}
	}
}

func TestKWhConversions(t *testing.T) {
	e := KWh(1e6)
	if !almostEqual(e.MWh(), 1000, 1e-9) {
		t.Errorf("MWh() = %v, want 1000", e.MWh())
	}
	if !almostEqual(e.GWh(), 1, 1e-12) {
		t.Errorf("GWh() = %v, want 1", e.GWh())
	}
	if !almostEqual(KWh(1).Joules(), 3.6e6, 1e-6) {
		t.Errorf("Joules() = %v, want 3.6e6", KWh(1).Joules())
	}
}

func TestWattsEnergyOver(t *testing.T) {
	// 2 MW for 24 hours = 48 MWh = 48000 kWh.
	got := MW(2).EnergyOver(24)
	if !almostEqual(float64(got), 48000, 1e-9) {
		t.Errorf("EnergyOver = %v, want 48000", got)
	}
	if !almostEqual(float64(KW(1).EnergyOver(1)), 1, 1e-12) {
		t.Errorf("1kW over 1h = %v, want 1 kWh", KW(1).EnergyOver(1))
	}
}

func TestWattsString(t *testing.T) {
	tests := []struct {
		v    Watts
		want string
	}{
		{Watts(500), "500.0 W"},
		{KW(2.5), "2.50 kW"},
		{MW(21), "21.00 MW"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestCelsiusFahrenheit(t *testing.T) {
	if !almostEqual(Celsius(0).Fahrenheit(), 32, 1e-12) {
		t.Errorf("0C = %vF, want 32", Celsius(0).Fahrenheit())
	}
	if !almostEqual(Celsius(100).Fahrenheit(), 212, 1e-12) {
		t.Errorf("100C = %vF, want 212", Celsius(100).Fahrenheit())
	}
}

func TestRelativeHumidityClamp(t *testing.T) {
	tests := []struct {
		in, want RelativeHumidity
	}{
		{-5, 0},
		{0, 0},
		{55, 55},
		{100, 100},
		{130, 100},
	}
	for _, tt := range tests {
		if got := tt.in.Clamp(); got != tt.want {
			t.Errorf("Clamp(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAreaAndCapacity(t *testing.T) {
	if !almostEqual(SquareMM(826).SquareCM(), 8.26, 1e-12) {
		t.Errorf("826mm2 = %v cm2, want 8.26", SquareMM(826).SquareCM())
	}
	if !almostEqual(PBytes(679).PB(), 679, 1e-9) {
		t.Errorf("PBytes(679).PB() = %v, want 679", PBytes(679).PB())
	}
	if !almostEqual(TBytes(1.5).TB(), 1.5, 1e-12) {
		t.Errorf("TBytes(1.5).TB() = %v", TBytes(1.5).TB())
	}
	if got := PBytes(679).String(); got != "679.0 PB" {
		t.Errorf("String() = %q, want 679.0 PB", got)
	}
}

func TestIntensityTimes(t *testing.T) {
	w := LPerKWh(2.5).Times(KWh(100))
	if !almostEqual(float64(w), 250, 1e-12) {
		t.Errorf("2.5 L/kWh * 100 kWh = %v, want 250 L", w)
	}
	c := GCO2PerKWh(400).Times(KWh(10))
	if !almostEqual(float64(c), 4000, 1e-12) {
		t.Errorf("400 g/kWh * 10 kWh = %v, want 4000 g", c)
	}
}

func TestPUEValid(t *testing.T) {
	if PUE(0.9).Valid() {
		t.Error("PUE 0.9 should be invalid")
	}
	if !PUE(1.0).Valid() || !PUE(1.65).Valid() {
		t.Error("PUE >= 1 should be valid")
	}
}

func TestGramsCO2String(t *testing.T) {
	if got := GramsCO2(2.5e6).String(); got != "2.50 tCO2e" {
		t.Errorf("String() = %q", got)
	}
	if got := GramsCO2(1500).String(); got != "1.50 kgCO2e" {
		t.Errorf("String() = %q", got)
	}
}

// Property: intensity scaling is linear in energy.
func TestIntensityLinearityProperty(t *testing.T) {
	f := func(wi, e1, e2 float64) bool {
		wi = math.Mod(math.Abs(wi), 100)
		e1 = math.Mod(math.Abs(e1), 1e6)
		e2 = math.Mod(math.Abs(e2), 1e6)
		lhs := LPerKWh(wi).Times(KWh(e1 + e2))
		rhs := LPerKWh(wi).Times(KWh(e1)) + LPerKWh(wi).Times(KWh(e2))
		return almostEqual(float64(lhs), float64(rhs), 1e-6*math.Max(1, float64(lhs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: gallon round-trip preserves volume.
func TestGallonRoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		v = math.Mod(math.Abs(v), 1e12)
		l := Liters(v)
		back := l.Gallons() * LitersPerGallon
		return almostEqual(back, v, 1e-6*math.Max(1, v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Clamp is idempotent and always lands in [0,100].
func TestClampProperty(t *testing.T) {
	f := func(h float64) bool {
		c := RelativeHumidity(h).Clamp()
		return c >= 0 && c <= 100 && c.Clamp() == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringsNonEmpty(t *testing.T) {
	// Smoke check every Stringer produces something sensible.
	ss := []string{
		Liters(1).String(), KWh(1).String(), Watts(1).String(),
		Celsius(20).String(), GB(10).String(), GramsCO2(5).String(),
		LPerKWh(1).String(), GCO2PerKWh(1).String(),
	}
	for _, s := range ss {
		if strings.TrimSpace(s) == "" {
			t.Error("empty String() output")
		}
	}
}

func TestLitersStringNegative(t *testing.T) {
	if got := Liters(-25.79e9).String(); got != "-25.79 GL" {
		t.Errorf("negative volume String = %q, want -25.79 GL", got)
	}
	if got := Liters(-500).String(); got != "-500.00 L" {
		t.Errorf("negative small volume String = %q", got)
	}
}
