// Package plan schedules sweep batches for substrate reuse. The
// substrate layer (internal/substrate) makes the generator years behind
// an assessment — site weather, grid signals, demand utilization — free
// to share between configurations with the same (identity, seed), but a
// batch that arrives in arbitrary order interleaves unrelated
// substrates: under a bounded LRU the working set churns, and the same
// year can be generated many times within one sweep.
//
// The planner removes that interleaving. It groups the batch by combined
// substrate fingerprint, clusters groups that share expensive components
// (same grid year, then same WUE/wet-bulb year, then same utilization
// year) next to each other, and partitions the group sequence into
// contiguous per-worker spans. Two invariants follow:
//
//   - Requests sharing a substrate run consecutively, and a substrate
//     is split across workers only when it is wider than one worker's
//     balanced share (its chunks then run on neighboring workers
//     concurrently, collapsed by the cache's singleflight), so at most
//     ~`workers` distinct substrates are live at any moment regardless
//     of batch size or arrival order.
//   - With a substrate cache that holds at least one year per worker,
//     planned execution generates each distinct year exactly once per
//     sweep (the property internal/plan's tests and the engine's
//     planner benchmarks assert).
//
// The package is deliberately ignorant of what an item is: callers
// (Engine.AssessMany, the daemon's job queue) supply batch indices and
// fingerprints, and get back an execution schedule over those indices.
package plan

import (
	"sort"

	"thirstyflops/internal/fingerprint"
)

// Item is one plannable unit of work: its position in the caller's batch
// plus the substrate identity its execution will touch (typically
// core.Config.SubstrateKeys -> Combined/Cluster).
type Item struct {
	// Index is the caller's batch position; Build's output spans are
	// sequences of these indices.
	Index int
	// Substrate is the combined substrate identity: items with equal
	// keys touch exactly the same memoized years.
	Substrate fingerprint.Key
	// Cluster holds the component keys in clustering priority order
	// (most expensive to regenerate first). Groups are sorted by it, so
	// groups sharing a prefix — same grid year, different site — end up
	// adjacent and still reuse the shared component.
	Cluster [4]fingerprint.Key
}

// Group is one run of items sharing a substrate, scheduled as a unit.
type Group struct {
	Substrate fingerprint.Key
	Cluster   [4]fingerprint.Key
	// Indexes lists the batch positions in arrival order.
	Indexes []int
}

// Plan is an execution schedule: per-worker ordered spans of batch
// indices. Every input index appears in exactly one span, and span
// items sharing a substrate are consecutive. A group is split across
// spans only when it is larger than the balanced span size — one giant
// group must not serialize the whole batch on a single worker — and its
// chunks land on neighboring workers, where the substrate cache's
// singleflight collapses their concurrent generation.
type Plan struct {
	// Spans holds one ordered index sequence per worker. Workers execute
	// their span front to back; spans are balanced by item count.
	Spans [][]int
	// Groups records the scheduled group sequence (concatenating the
	// groups yields the concatenated spans). A substrate wider than the
	// balanced span size appears as several adjacent chunks, so
	// len(Groups) can exceed the distinct substrate count.
	Groups []Group
}

// Items returns the total number of scheduled items.
func (p Plan) Items() int {
	n := 0
	for _, s := range p.Spans {
		n += len(s)
	}
	return n
}

// Order flattens the schedule into one global sequence, span by span —
// the execution order a single worker would follow.
func (p Plan) Order() []int {
	out := make([]int, 0, p.Items())
	for _, s := range p.Spans {
		out = append(out, s...)
	}
	return out
}

// compareCluster orders two component-key vectors lexicographically.
func compareCluster(a, b [4]fingerprint.Key) int {
	for i := range a {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Build computes the schedule for a batch across the given worker count.
// Grouping is stable: within a group, items keep their arrival order.
// Groups are sorted by Cluster (then by first arrival, for determinism
// when two distinct substrates tie on every component — impossible short
// of a fingerprint collision, but cheap to pin down) and partitioned
// into at most `workers` contiguous spans with balanced item counts.
func Build(items []Item, workers int) Plan {
	if workers < 1 {
		workers = 1
	}
	byKey := make(map[fingerprint.Key]*Group, len(items))
	groups := make([]*Group, 0, len(items))
	first := make(map[fingerprint.Key]int, len(items))
	for _, it := range items {
		g, ok := byKey[it.Substrate]
		if !ok {
			g = &Group{Substrate: it.Substrate, Cluster: it.Cluster}
			byKey[it.Substrate] = g
			groups = append(groups, g)
			first[it.Substrate] = it.Index
		}
		g.Indexes = append(g.Indexes, it.Index)
	}
	sort.SliceStable(groups, func(i, j int) bool {
		if c := compareCluster(groups[i].Cluster, groups[j].Cluster); c != 0 {
			return c < 0
		}
		return first[groups[i].Substrate] < first[groups[j].Substrate]
	})

	// Chunk groups wider than the balanced span size so a batch
	// dominated by one substrate still fans out: the chunks stay
	// adjacent (same sort position), so they run on neighboring workers
	// at the same time and cost at most one extra generation per extra
	// span even without singleflight.
	if balanced := (len(items) + workers - 1) / workers; workers > 1 {
		chunked := make([]*Group, 0, len(groups))
		for _, g := range groups {
			for len(g.Indexes) > balanced {
				chunked = append(chunked, &Group{
					Substrate: g.Substrate, Cluster: g.Cluster, Indexes: g.Indexes[:balanced],
				})
				g = &Group{Substrate: g.Substrate, Cluster: g.Cluster, Indexes: g.Indexes[balanced:]}
			}
			chunked = append(chunked, g)
		}
		groups = chunked
	}

	p := Plan{Groups: make([]Group, len(groups))}
	for i, g := range groups {
		p.Groups[i] = *g
	}

	// Contiguous balanced partition: walk the sorted groups filling each
	// span while it holds fewer than ceil(remaining/spansLeft) items, so
	// every span reaches its target (overshooting by less than one group
	// chunk) before the next span starts. Spans never undershoot, so
	// targets are non-increasing from ceil(n/workers) and every span is
	// bounded by ceil(n/workers) + maxChunk - 1 — the balance property
	// plan_test pins. (The previous first-fit rule — skip a group that
	// would overflow the target — let spans undershoot, and cascading
	// undershoot piled the skipped groups onto the final worker, up to
	// ~1.5x past that bound on adversarial group-size mixes.)
	remaining := len(items)
	gi := 0
	for b := 0; b < workers && gi < len(groups); b++ {
		spansLeft := workers - b
		target := (remaining + spansLeft - 1) / spansLeft
		var span []int
		count := 0
		for gi < len(groups) && count < target {
			g := groups[gi]
			span = append(span, g.Indexes...)
			count += len(g.Indexes)
			gi++
		}
		remaining -= count
		p.Spans = append(p.Spans, span)
	}
	return p
}
