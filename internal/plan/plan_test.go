package plan

import (
	"math/rand"
	"reflect"
	"testing"

	"thirstyflops/internal/fingerprint"
)

// keyOf derives a distinct fingerprint from a small label.
func keyOf(parts ...int) fingerprint.Key {
	h := fingerprint.New()
	defer h.Release()
	for _, p := range parts {
		h.Int(p)
	}
	return h.Sum()
}

// itemOf builds an Item whose substrate is (grid, site, util) and whose
// cluster mirrors the substrate package's priority (grid, wue, wetbulb,
// util) — wue/wetbulb derive from the site label.
func itemOf(index, grid, site, util int) Item {
	return Item{
		Index:     index,
		Substrate: keyOf(grid, site, util),
		Cluster: [4]fingerprint.Key{
			keyOf(1, grid), keyOf(2, site), keyOf(3, site), keyOf(4, util),
		},
	}
}

// randomBatch synthesizes a batch drawing substrates from a small pool so
// sharing is common.
func randomBatch(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = itemOf(i, rng.Intn(3), rng.Intn(4), rng.Intn(2))
	}
	return items
}

// TestBuildProperties asserts the planner invariants over many random
// batches and worker counts: every index scheduled exactly once, no
// group split across spans, shared substrates consecutive in execution
// order, and at most `workers` spans.
func TestBuildProperties(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		workers := 1 + rng.Intn(8)
		items := randomBatch(rng, n)
		p := Build(items, workers)

		if len(p.Spans) > workers {
			t.Fatalf("seed %d: %d spans exceed %d workers", seed, len(p.Spans), workers)
		}

		seen := make(map[int]bool, n)
		for _, span := range p.Spans {
			for _, idx := range span {
				if seen[idx] {
					t.Fatalf("seed %d: index %d scheduled twice", seed, idx)
				}
				seen[idx] = true
			}
		}
		if len(seen) != n {
			t.Fatalf("seed %d: scheduled %d of %d indices", seed, len(seen), n)
		}

		// A substrate spans two workers only when it is wider than the
		// balanced span size, and its items are consecutive within each
		// span that holds it.
		subOf := make(map[int]fingerprint.Key, n)
		sizeOf := make(map[fingerprint.Key]int)
		for _, it := range items {
			subOf[it.Index] = it.Substrate
			sizeOf[it.Substrate]++
		}
		balanced := (n + workers - 1) / workers
		spanOf := make(map[fingerprint.Key]int)
		for si, span := range p.Spans {
			var prev fingerprint.Key
			closed := make(map[fingerprint.Key]bool)
			for i, idx := range span {
				sub := subOf[idx]
				if owner, ok := spanOf[sub]; ok && owner != si && sizeOf[sub] <= balanced {
					t.Fatalf("seed %d: substrate of %d items (balanced span %d) split across workers %d and %d",
						seed, sizeOf[sub], balanced, owner, si)
				}
				spanOf[sub] = si
				if i > 0 && sub != prev {
					if closed[sub] {
						t.Fatalf("seed %d: substrate revisited after an interleaved run", seed)
					}
					closed[prev] = true
				}
				prev = sub
			}
		}
	}
}

// TestBuildClustersSharedComponents asserts groups sharing the highest
// priority component (the grid year) are adjacent in schedule order, so
// even partially-overlapping substrates reuse the expensive component.
func TestBuildClustersSharedComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randomBatch(rng, 80)
	p := Build(items, 4)
	seenGrid := make(map[fingerprint.Key]bool)
	var prev fingerprint.Key
	for i, g := range p.Groups {
		grid := g.Cluster[0]
		if i > 0 && grid != prev && seenGrid[grid] {
			t.Fatal("groups sharing a grid year are not adjacent in schedule order")
		}
		seenGrid[prev] = true
		prev = grid
	}
}

// TestBuildStableWithinGroup asserts arrival order survives inside a
// group, and that Build is deterministic.
func TestBuildStableWithinGroup(t *testing.T) {
	items := []Item{
		itemOf(0, 1, 1, 1), itemOf(1, 2, 1, 1), itemOf(2, 1, 1, 1),
		itemOf(3, 1, 1, 1), itemOf(4, 2, 1, 1),
	}
	p := Build(items, 2)
	for _, g := range p.Groups {
		for i := 1; i < len(g.Indexes); i++ {
			if g.Indexes[i-1] >= g.Indexes[i] {
				t.Fatalf("group indexes out of arrival order: %v", g.Indexes)
			}
		}
	}
	q := Build(items, 2)
	if !reflect.DeepEqual(p, q) {
		t.Fatal("Build is not deterministic")
	}
}

// TestBuildBalancesSpans asserts the contiguous partition does not pile
// everything on one worker when group sizes allow balance.
func TestBuildBalancesSpans(t *testing.T) {
	var items []Item
	for g := 0; g < 8; g++ {
		for j := 0; j < 5; j++ {
			items = append(items, itemOf(len(items), g, g, 0))
		}
	}
	p := Build(items, 4)
	if len(p.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(p.Spans))
	}
	for si, span := range p.Spans {
		if len(span) != 10 {
			t.Errorf("span %d has %d items, want 10 (balanced)", si, len(span))
		}
	}
}

// TestBuildSplitsOversizedGroups asserts a batch dominated by one
// substrate still fans out: the group is chunked to the balanced span
// size instead of serializing the whole batch on a single worker.
func TestBuildSplitsOversizedGroups(t *testing.T) {
	var items []Item
	for i := 0; i < 12; i++ {
		items = append(items, itemOf(i, 1, 1, 1)) // one substrate
	}
	p := Build(items, 4)
	if len(p.Spans) != 4 {
		t.Fatalf("single-substrate batch used %d workers, want 4", len(p.Spans))
	}
	seen := map[int]bool{}
	for _, span := range p.Spans {
		if len(span) != 3 {
			t.Errorf("span has %d items, want 3 (balanced)", len(span))
		}
		for _, idx := range span {
			if seen[idx] {
				t.Fatalf("index %d scheduled twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 12 {
		t.Fatalf("scheduled %d of 12", len(seen))
	}
}

// TestBuildSpanBalanceBound is the partition's balance property: for any
// batch and worker count, no span exceeds ceil(n/workers) plus one group
// chunk. The previous fill rule (skip a group that would overflow the
// running target) violated this — spans could undershoot, and cascading
// undershoot piled the skipped groups onto the final worker ~1.5x past
// the bound — so the batch sizes here draw group sizes adversarially
// (many mid-sized groups just above half the balanced share) as well as
// uniformly.
func TestBuildSpanBalanceBound(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		workers := 1 + rng.Intn(8)

		// Half the trials use the uniform pool; half synthesize skewed
		// group sizes directly (size-g runs of one substrate), which is
		// where the first-fit rule degenerated.
		var items []Item
		if seed%2 == 0 {
			items = randomBatch(rng, 1+rng.Intn(120))
		} else {
			label := 0
			for g := 1 + rng.Intn(12); g > 0; g-- {
				label++
				for size := 1 + rng.Intn(20); size > 0; size-- {
					items = append(items, itemOf(len(items), label, label, label))
				}
			}
		}
		n := len(items)
		balanced := (n + workers - 1) / workers
		maxGroup := 0
		sizeOf := map[fingerprint.Key]int{}
		for _, it := range items {
			sizeOf[it.Substrate]++
		}
		for _, size := range sizeOf {
			maxGroup = max(maxGroup, size)
		}
		// Chunking caps every scheduled group at the balanced share.
		maxChunk := min(maxGroup, balanced)
		bound := balanced + maxChunk

		p := Build(items, workers)
		scheduled := 0
		for si, span := range p.Spans {
			scheduled += len(span)
			if len(span) > bound {
				t.Fatalf("seed %d: span %d holds %d items; bound is ceil(%d/%d)+%d = %d",
					seed, si, len(span), n, workers, maxChunk, bound)
			}
		}
		if scheduled != n {
			t.Fatalf("seed %d: scheduled %d of %d items", seed, scheduled, n)
		}
	}
}

// TestBuildDegenerate covers empty batches and worker counts below 1.
func TestBuildDegenerate(t *testing.T) {
	if p := Build(nil, 4); len(p.Spans) != 0 || len(p.Groups) != 0 {
		t.Fatalf("empty batch produced a non-empty plan: %+v", p)
	}
	items := []Item{itemOf(0, 1, 1, 1), itemOf(1, 2, 2, 2)}
	p := Build(items, 0)
	if len(p.Spans) != 1 || len(p.Order()) != 2 {
		t.Fatalf("workers=0 should clamp to one span: %+v", p)
	}
	if p.Items() != 2 {
		t.Fatalf("Items() = %d, want 2", p.Items())
	}
}
