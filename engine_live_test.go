package thirstyflops

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
)

func newLiveEngine(t *testing.T, system string, window int) (*Engine, *Stream) {
	t.Helper()
	stream, err := NewStream(system, 0, window)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(WithLiveStream(stream)), stream
}

func TestEngineLiveAssessEmptyWindowMatchesSimulation(t *testing.T) {
	eng, _ := newLiveEngine(t, "", 168)
	ctx := context.Background()
	sim, err := eng.Assess(ctx, AssessRequest{System: "Frontier"})
	if err != nil {
		t.Fatal(err)
	}
	live, err := eng.Assess(ctx, AssessRequest{System: "Frontier", Source: SourceLive})
	if err != nil {
		t.Fatal(err)
	}
	if live.Source != SourceLive || sim.Source != SourceSimulated {
		t.Errorf("sources wrong: sim %q live %q", sim.Source, live.Source)
	}
	if live.Live == nil || live.Live.Epoch != 0 || live.Live.HoursObserved != 0 {
		t.Errorf("empty-window provenance wrong: %+v", live.Live)
	}
	// With nothing observed, the live splice is the simulation.
	if live.OperationalL != sim.OperationalL || live.EnergyKWh != sim.EnergyKWh {
		t.Error("empty live window changed the assessment")
	}
}

func TestEngineLiveAssessReflectsIngestedSamples(t *testing.T) {
	eng, _ := newLiveEngine(t, "", 168)
	ctx := context.Background()
	req := AssessRequest{System: "Frontier", Source: SourceLive, IncludeSeries: true}

	before, err := eng.Assess(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// Observe hours 0..23 at a fixed 5 MW — far from the simulated
	// Frontier demand, so the splice is visible in totals and series.
	samples := make([]Sample, 24)
	for h := range samples {
		samples[h] = Sample{Hour: h, Power: 5e6}
	}
	accepted, err := eng.Ingest(samples...)
	if err != nil || accepted != 24 {
		t.Fatalf("ingest: accepted %d, err %v", accepted, err)
	}

	after, err := eng.Assess(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if after.Live == nil || after.Live.Epoch != 24 || after.Live.HoursObserved != 24 ||
		after.Live.WindowLo != 0 || after.Live.WindowHi != 24 {
		t.Fatalf("provenance wrong: %+v", after.Live)
	}
	if after.Cached {
		t.Error("post-ingest assessment served from a stale cache entry")
	}
	for h := 0; h < 24; h++ {
		if got := float64(after.Series.Energy[h]); math.Abs(got-5000) > 1e-9 {
			t.Fatalf("hour %d energy = %v kWh, want 5000 (observed 5 MW)", h, got)
		}
	}
	// Hours beyond the window keep the simulated demand.
	if after.Series.Energy[24] != before.Series.Energy[24] {
		t.Error("unobserved hour diverged from simulation")
	}
	if after.OperationalL == before.OperationalL {
		t.Error("observed demand did not move the water footprint")
	}
	// The intensity channels are modeled either way.
	if after.Series.WUE[0] != before.Series.WUE[0] || after.Series.EWF[0] != before.Series.EWF[0] {
		t.Error("live splice touched the intensity channels")
	}
}

// TestEngineLiveEpochKeysCache is the staleness guarantee: assessments
// are cached per stream epoch, a repeat at the same epoch hits, and any
// accepted sample advances the epoch so the pre-ingest entry can never
// be served again.
func TestEngineLiveEpochKeysCache(t *testing.T) {
	eng, _ := newLiveEngine(t, "", 168)
	ctx := context.Background()
	req := AssessRequest{System: "Frontier", Source: SourceLive}

	first, err := eng.Assess(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first live assessment claimed a cache hit")
	}
	repeat, err := eng.Assess(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !repeat.Cached {
		t.Error("same-epoch repeat missed the cache")
	}

	for round := 1; round <= 3; round++ {
		if _, err := eng.Ingest(Sample{Hour: round, Power: 1e6}); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Assess(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Fatalf("round %d: cache served a pre-ingest result after the epoch advanced", round)
		}
		if res.Live.Epoch != uint64(round) {
			t.Fatalf("round %d: epoch = %d", round, res.Live.Epoch)
		}
		again, err := eng.Assess(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !again.Cached || again.Live.Epoch != uint64(round) {
			t.Fatalf("round %d: same-epoch repeat missed (cached=%v epoch=%d)", round, again.Cached, again.Live.Epoch)
		}
	}

	// The live keyspace must not pollute the simulated one.
	sim, err := eng.Assess(ctx, AssessRequest{System: "Frontier"})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Live != nil || sim.Source != SourceSimulated {
		t.Errorf("simulated result carries live provenance: %+v", sim.Live)
	}
}

func TestEngineLiveUncachedEngine(t *testing.T) {
	stream, err := NewStream("", 0, 24)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(WithCache(0), WithLiveStream(stream))
	if _, err := eng.Ingest(Sample{Hour: 0, Power: 2e6}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Assess(context.Background(), AssessRequest{System: "Frontier", Source: SourceLive, IncludeSeries: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("cache-disabled engine reported a hit")
	}
	if got := float64(res.Series.Energy[0]); math.Abs(got-2000) > 1e-9 {
		t.Errorf("hour 0 energy = %v kWh, want 2000", got)
	}
}

func TestEngineLiveErrors(t *testing.T) {
	ctx := context.Background()

	// No stream attached.
	plain := NewEngine()
	if _, err := plain.Assess(ctx, AssessRequest{System: "Frontier", Source: SourceLive}); err == nil {
		t.Error("live assess without a stream succeeded")
	}
	if _, err := plain.Ingest(Sample{Hour: 0, Power: 1}); err == nil {
		t.Error("ingest without a stream succeeded")
	}

	// Unknown source label.
	eng, _ := newLiveEngine(t, "", 24)
	if _, err := eng.Assess(ctx, AssessRequest{System: "Frontier", Source: "psychic"}); err == nil ||
		!strings.Contains(err.Error(), "psychic") {
		t.Errorf("unknown source not rejected: %v", err)
	}

	// A system-pinned stream leaves foreign assessments unroutable: the
	// registry answers with the distinct no-stream error.
	pinned, _ := newLiveEngine(t, "Frontier", 24)
	if _, err := pinned.Assess(ctx, AssessRequest{System: "Marconi", Source: SourceLive}); !errors.Is(err, ErrNoLiveStream) {
		t.Errorf("system mismatch not rejected with ErrNoLiveStream: %v", err)
	}
	if _, err := pinned.Assess(ctx, AssessRequest{System: "Frontier", Source: SourceLive}); err != nil {
		t.Errorf("matching system rejected: %v", err)
	}

	// Year-pinned stream refuses other years.
	stream, err := NewStream("", 2023, 24)
	if err != nil {
		t.Fatal(err)
	}
	yearEng := NewEngine(WithLiveStream(stream))
	year := 2024
	if _, err := yearEng.Assess(ctx, AssessRequest{System: "Frontier", Year: &year, Source: SourceLive}); err == nil {
		t.Error("year mismatch not rejected")
	}

	// Partial batch: rejects reported, the rest lands.
	accepted, err := eng.Ingest(
		Sample{Hour: 0, Power: 1e6},
		Sample{Hour: 1, Power: -1},
		Sample{Hour: 2, Power: 1e6},
	)
	if accepted != 2 || err == nil {
		t.Errorf("partial batch: accepted %d err %v, want 2 with error", accepted, err)
	}
}

// TestEngineLiveConcurrentIngestAndAssess races feeds against live
// assessments; under -race it proves the snapshot/splice path never
// observes a torn window.
func TestEngineLiveConcurrentIngestAndAssess(t *testing.T) {
	eng, _ := newLiveEngine(t, "", 64)
	ctx := context.Background()
	req := AssessRequest{System: "Frontier", Source: SourceLive}
	if _, err := eng.Assess(ctx, req); err != nil {
		t.Fatal(err) // warm the simulated base outside the race
	}
	var wg sync.WaitGroup
	for f := 0; f < 4; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := eng.Ingest(Sample{Hour: i % 64, Power: 1e6}); err != nil {
					t.Error(err)
					return
				}
			}
		}(f)
	}
	for a := 0; a < 4; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				res, err := eng.Assess(ctx, req)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Live == nil || res.Source != SourceLive {
					t.Error("live provenance missing under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
}
