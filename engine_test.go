package thirstyflops

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// marshalNormalizedErr serializes a result with the cache marker cleared,
// so first and repeat assessments of the same configuration compare
// equal. The error-returning form is safe to call off the test goroutine
// (t.Fatal must not run on worker goroutines).
func marshalNormalizedErr(r *AssessResult) (string, error) {
	c := *r
	c.Cached = false
	raw, err := json.Marshal(c)
	return string(raw), err
}

// marshalNormalized is the fatal-on-error form for the test goroutine.
func marshalNormalized(t *testing.T, r *AssessResult) string {
	t.Helper()
	s, err := marshalNormalizedErr(r)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEngineAssessBundled(t *testing.T) {
	eng := NewEngine()
	res, err := eng.Assess(context.Background(), AssessRequest{
		System: "Frontier", Scenarios: true, Withdrawal: true, IncludeSeries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "Frontier" || res.Site != "Oak Ridge" || res.Region != "Tennessee" {
		t.Errorf("metadata wrong: %+v", res)
	}
	if res.Years != DefaultLifetimeYears {
		t.Errorf("years = %v, want default %d", res.Years, DefaultLifetimeYears)
	}
	if res.DirectL <= 0 || res.IndirectL <= 0 || res.EmbodiedL <= 0 || res.CarbonKg <= 0 {
		t.Error("footprints missing")
	}
	if res.OperationalL != res.DirectL+res.IndirectL {
		t.Error("operational != direct + indirect")
	}
	if res.LifetimeTotalL <= res.EmbodiedL {
		t.Error("lifetime should exceed embodied alone")
	}
	if len(res.Scenarios) != 5 {
		t.Errorf("scenario count = %d, want 5", len(res.Scenarios))
	}
	if res.Withdrawal == nil || res.Withdrawal.Gross <= 0 {
		t.Error("withdrawal section missing")
	}
	if res.Series == nil || res.Series.Len() != 8760 {
		t.Error("hourly series missing")
	}
	if err := res.Series.Validate(); err != nil {
		t.Errorf("attached series invalid: %v", err)
	}
	var shares float64
	for _, v := range res.EmbodiedShares {
		shares += v
	}
	if shares < 0.99 || shares > 1.01 {
		t.Errorf("embodied shares sum to %v", shares)
	}
	// The whole result survives a JSON round trip (the serving contract).
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back AssessResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.System != res.System || back.LifetimeTotalL != res.LifetimeTotalL {
		t.Error("result mangled by JSON round trip")
	}
}

func TestEngineMatchesDirectAssessment(t *testing.T) {
	eng := NewEngine()
	res, err := eng.Assess(context.Background(), AssessRequest{System: "Marconi"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := SystemConfig("Marconi")
	if err != nil {
		t.Fatal(err)
	}
	a, err := cfg.Assess()
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyKWh != float64(a.Energy) || res.DirectL != float64(a.Direct) ||
		res.IndirectL != float64(a.Indirect) {
		t.Error("engine result disagrees with direct Config.Assess")
	}
}

func TestEngineCacheHit(t *testing.T) {
	eng := NewEngine()
	ctx := context.Background()
	req := AssessRequest{System: "Polaris", Scenarios: true}

	first, err := eng.Assess(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first assessment reported cached")
	}
	second, err := eng.Assess(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second assessment of the same config did not hit the cache")
	}
	st := eng.CacheStats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 1 entry (no re-simulation)", st)
	}
	if marshalNormalized(t, first) != marshalNormalized(t, second) {
		t.Error("cached result differs from the original")
	}

	// A different seed is a different configuration: a miss, not a hit.
	seed := uint64(7)
	third, err := eng.Assess(ctx, AssessRequest{System: "Polaris", Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Error("different seed served from cache")
	}
	if marshalNormalized(t, third) == marshalNormalized(t, first) {
		t.Error("different seed produced an identical assessment")
	}
}

func TestEngineCachedAssessmentIsFaster(t *testing.T) {
	eng := NewEngine()
	ctx := context.Background()
	req := AssessRequest{System: "Fugaku"}

	start := time.Now()
	if _, err := eng.Assess(ctx, req); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)

	const repeats = 5
	start = time.Now()
	for i := 0; i < repeats; i++ {
		if _, err := eng.Assess(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	warm := time.Since(start) / repeats

	if warm*2 >= cold {
		t.Errorf("cached assessment not measurably faster: cold %v, warm %v", cold, warm)
	}
}

func TestEngineCacheEviction(t *testing.T) {
	eng := NewEngine(WithCache(1))
	ctx := context.Background()
	for _, sys := range []string{"Marconi", "Fugaku", "Marconi"} {
		if _, err := eng.Assess(ctx, AssessRequest{System: sys}); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.CacheStats()
	// Fugaku evicted Marconi, so the third request misses again.
	if st.Entries != 1 || st.Misses != 3 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 3 misses into a single-entry cache", st)
	}

	uncached := NewEngine(WithCache(0))
	if _, err := uncached.Assess(ctx, AssessRequest{System: "Marconi"}); err != nil {
		t.Fatal(err)
	}
	if st := uncached.CacheStats(); st.Entries != 0 {
		t.Errorf("disabled cache stored %d entries", st.Entries)
	}
}

func TestEngineAssessManyMatchesSequential(t *testing.T) {
	// The worker-pool fan-out must return byte-identical results to
	// one-at-a-time assessment. Run with -race to verify safety.
	var reqs []AssessRequest
	for _, sys := range SystemNames() {
		for _, seed := range []uint64{1, 2} {
			s := seed
			reqs = append(reqs, AssessRequest{System: sys, Seed: &s, Scenarios: true})
		}
	}

	ctx := context.Background()
	sequential := NewEngine()
	want := make([]string, len(reqs))
	for i, req := range reqs {
		res, err := sequential.Assess(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = marshalNormalized(t, res)
	}

	concurrent := NewEngine(WithWorkers(8))
	results, err := concurrent.AssessMany(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("result count = %d, want %d", len(results), len(reqs))
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("result %d missing", i)
		}
		if got := marshalNormalized(t, res); got != want[i] {
			t.Errorf("concurrent result %d differs from sequential", i)
		}
	}

	// Duplicate requests collapse onto one simulation each.
	dupes := NewEngine(WithWorkers(8))
	same := make([]AssessRequest, 16)
	for i := range same {
		same[i] = AssessRequest{System: "Frontier"}
	}
	if _, err := dupes.AssessMany(ctx, same); err != nil {
		t.Fatal(err)
	}
	if st := dupes.CacheStats(); st.Misses != 1 {
		t.Errorf("16 identical requests simulated %d times, want 1", st.Misses)
	}
}

func TestEngineAssessManyReportsPerRequestErrors(t *testing.T) {
	eng := NewEngine()
	results, err := eng.AssessMany(context.Background(), []AssessRequest{
		{System: "Marconi"},
		{System: "HAL9000"},
	})
	if err == nil {
		t.Fatal("bad request slipped through")
	}
	if results[0] == nil || results[1] != nil {
		t.Error("good request should succeed, bad request should leave a nil slot")
	}
}

func TestEngineCustomDocument(t *testing.T) {
	doc := ConfigDocument{}
	raw := `{
		"system": {
			"name": "TestRig", "nodes": 8,
			"cpu": {"catalog": "AMD EPYC 7532"}, "cpus_per_node": 2,
			"dram_gb_per_node": 128, "peak_power_mw": 0.02, "pue": 1.3
		},
		"site_name": "Lemont", "region": "Illinois"
	}`
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	res, err := eng.Assess(context.Background(), AssessRequest{Custom: &doc})
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "TestRig" || res.Site != "Lemont" || res.OperationalL <= 0 {
		t.Errorf("custom assessment wrong: %+v", res)
	}
}

func TestEngineRequestValidation(t *testing.T) {
	eng := NewEngine()
	ctx := context.Background()
	if _, err := eng.Assess(ctx, AssessRequest{}); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := eng.Assess(ctx, AssessRequest{System: "Marconi", Custom: &ConfigDocument{}}); err == nil {
		t.Error("both system and custom accepted")
	}
	if _, err := eng.Assess(ctx, AssessRequest{System: "HAL9000"}); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := eng.Assess(ctx, AssessRequest{System: "Marconi", Years: -1}); err == nil {
		t.Error("negative lifetime accepted")
	}
}

func TestEngineContextCancellation(t *testing.T) {
	eng := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Assess(ctx, AssessRequest{System: "Marconi"}); err == nil {
		t.Error("canceled context accepted by Assess")
	}
	if _, err := eng.Water500(ctx, Water500Request{}); err == nil {
		t.Error("canceled context accepted by Water500")
	}
}

func TestEngineSweep(t *testing.T) {
	eng := NewEngine()
	res, err := eng.Sweep(context.Background(), SweepRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Systems) != 4 {
		t.Fatalf("system count = %d, want all 4 bundled", len(res.Systems))
	}
	for _, s := range res.Systems {
		if len(s.Scenarios) != 5 {
			t.Errorf("%s: %d scenarios, want 5", s.System, len(s.Scenarios))
		}
	}
	sub, err := eng.Sweep(context.Background(), SweepRequest{Systems: []string{"Fugaku"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Systems) != 1 || sub.Systems[0].System != "Fugaku" {
		t.Errorf("filtered sweep wrong: %+v", sub.Systems)
	}
}

func TestEngineWater500(t *testing.T) {
	eng := NewEngine()
	res, err := eng.Water500(context.Background(), Water500Request{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 4 || res.Entries[0].Rank != 1 {
		t.Fatalf("ranking malformed: %+v", res.Entries)
	}
	// The ranking reuses the per-system assessments: 4 configs, 4 misses.
	if st := eng.CacheStats(); st.Misses != 4 {
		t.Errorf("misses = %d, want 4", st.Misses)
	}
	// Re-ranking is pure cache hits.
	if _, err := eng.Water500(context.Background(), Water500Request{}); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Misses != 4 || st.Hits != 4 {
		t.Errorf("stats after re-rank = %+v, want 4 misses and 4 hits", eng.CacheStats())
	}
}

func TestEngineShardedCacheConcurrentEviction(t *testing.T) {
	// Hammer a small sharded cache with more distinct configurations
	// than it can hold from many goroutines (run with -race): the entry
	// count must respect the bound and every result must stay correct.
	eng := NewEngine(WithCache(16), WithShards(4), WithWorkers(8))
	ctx := context.Background()

	want := map[uint64]string{}
	for seed := uint64(0); seed < 24; seed++ {
		s := seed
		res, err := eng.Assess(ctx, AssessRequest{System: "Marconi", Seed: &s})
		if err != nil {
			t.Fatal(err)
		}
		want[seed] = marshalNormalized(t, res)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				seed := uint64((w*7 + i) % 24)
				s := seed
				res, err := eng.Assess(ctx, AssessRequest{System: "Marconi", Seed: &s})
				if err != nil {
					t.Errorf("seed %d: %v", seed, err)
					return
				}
				got, err := marshalNormalizedErr(res)
				if err != nil {
					t.Errorf("seed %d: %v", seed, err)
					return
				}
				if got != want[seed] {
					t.Errorf("seed %d: concurrent result diverged", seed)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := eng.CacheStats(); st.Entries > 16 {
		t.Errorf("entries %d exceed the WithCache(16) bound", st.Entries)
	}
}

func TestEngineLRUOrderingAcrossHits(t *testing.T) {
	// Single shard, capacity 2: touching the oldest entry must protect
	// it from the next eviction (the O(1) list must preserve exact LRU
	// semantics, not just bounded size).
	eng := NewEngine(WithCache(2), WithShards(1))
	ctx := context.Background()
	assess := func(sys string) {
		t.Helper()
		if _, err := eng.Assess(ctx, AssessRequest{System: sys}); err != nil {
			t.Fatal(err)
		}
	}
	assess("Marconi") // miss
	assess("Fugaku")  // miss
	assess("Marconi") // hit: Fugaku becomes the eviction candidate
	assess("Polaris") // miss: evicts Fugaku
	assess("Marconi") // must still be resident
	st := eng.CacheStats()
	if st.Misses != 3 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 3 misses and 2 hits (LRU protected the touched entry)", st)
	}
	assess("Fugaku") // evicted above: a fourth miss
	if st := eng.CacheStats(); st.Misses != 4 {
		t.Errorf("misses = %d, want 4 (Fugaku was evicted)", st.Misses)
	}
}

func TestEngineWater500Cancellation(t *testing.T) {
	eng := NewEngine(WithWorkers(1))
	ctx, cancel := context.WithCancel(context.Background())

	// Warm one entry, then cancel mid-flight: the feeder must not block
	// and every nil slot must pair with a reported error.
	if _, err := eng.Water500(context.Background(), Water500Request{}); err != nil {
		t.Fatal(err)
	}
	cancel()
	res, err := eng.Water500(ctx, Water500Request{})
	if err == nil {
		t.Fatal("canceled Water500 returned no error")
	}
	if res != nil {
		t.Error("canceled Water500 returned a partial result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

func TestEngineShardOptionBounds(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct{ cacheN, shards int }{
		{1, 16}, {3, 8}, {64, 64}, {64, 0}, {5, -1},
	} {
		eng := NewEngine(WithCache(tc.cacheN), WithShards(tc.shards))
		for _, sys := range SystemNames() {
			if _, err := eng.Assess(ctx, AssessRequest{System: sys}); err != nil {
				t.Fatal(err)
			}
		}
		if st := eng.CacheStats(); st.Entries > tc.cacheN {
			t.Errorf("WithCache(%d) WithShards(%d): %d entries exceed bound",
				tc.cacheN, tc.shards, st.Entries)
		}
	}
}

func TestEngineFingerprintDistinguishesRequests(t *testing.T) {
	// Distinct custom documents must never share cache entries (the
	// streaming fingerprint covers every simulated field).
	eng := NewEngine()
	ctx := context.Background()
	mk := func(pue float64) *ConfigDocument {
		raw := fmt.Sprintf(`{
			"system": {
				"name": "Rig", "nodes": 8,
				"cpu": {"catalog": "AMD EPYC 7532"}, "cpus_per_node": 2,
				"dram_gb_per_node": 128, "peak_power_mw": 0.02, "pue": %v
			},
			"site_name": "Lemont", "region": "Illinois"
		}`, pue)
		var doc ConfigDocument
		if err := json.Unmarshal([]byte(raw), &doc); err != nil {
			t.Fatal(err)
		}
		return &doc
	}
	a, err := eng.Assess(ctx, AssessRequest{Custom: mk(1.2)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Assess(ctx, AssessRequest{Custom: mk(1.5)})
	if err != nil {
		t.Fatal(err)
	}
	if b.Cached {
		t.Error("different PUE served from cache")
	}
	if a.IndirectL == b.IndirectL {
		t.Error("PUE change did not alter the assessment")
	}
}

// BenchmarkEngineAssessCold is the production cold path: the Engine's
// assessment cache is disabled so the hourly combination loop runs every
// time, but the substrate layer (weather/grid/demand years, pure
// functions of identity and seed) is shared across iterations — exactly
// what a sweep over systems × scenarios pays per new configuration.
func BenchmarkEngineAssessCold(b *testing.B) {
	req := AssessRequest{System: "Frontier"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A cache-disabled engine simulates every time.
		eng := NewEngine(WithCache(0))
		if _, err := eng.Assess(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineAssessColdIsolated defeats both the Engine cache and the
// substrate layer with a fresh seed per iteration: the full generator
// cost, the absolute worst case.
func BenchmarkEngineAssessColdIsolated(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(WithCache(0))
		seed := uint64(i) + 1
		if _, err := eng.Assess(context.Background(), AssessRequest{System: "Frontier", Seed: &seed}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineAssessCached(b *testing.B) {
	eng := NewEngine()
	req := AssessRequest{System: "Frontier"}
	if _, err := eng.Assess(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Assess(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineAssessCachedParallel measures the cached path under
// concurrent load across distinct configurations — the contention the
// sharded cache exists to relieve.
func BenchmarkEngineAssessCachedParallel(b *testing.B) {
	eng := NewEngine(WithCache(64))
	ctx := context.Background()
	seeds := [8]uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for i := range seeds {
		s := seeds[i]
		if _, err := eng.Assess(ctx, AssessRequest{System: "Frontier", Seed: &s}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s := seeds[i&7]
			i++
			if _, err := eng.Assess(ctx, AssessRequest{System: "Frontier", Seed: &s}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
