package thirstyflops_test

// Ablation benchmarks: quantify the modeling choices DESIGN.md calls out
// by running each variant and reporting the resulting metric alongside
// the timing (b.ReportMetric). Run with:
//
//	go test -bench=Ablation -benchtime=1x

import (
	"testing"

	"thirstyflops/internal/energy"
	"thirstyflops/internal/jobs"
	"thirstyflops/internal/miniamr"
	"thirstyflops/internal/sched"
	"thirstyflops/internal/stats"
	"thirstyflops/internal/weather"
	"thirstyflops/internal/wue"
)

// BenchmarkAblationWUECap compares the saturating WUE curve against the
// uncapped quadratic: the cap bounds peak summer WUE to the tower's design
// evaporation rate (Fig. 6b's 0-12 L/kWh scale).
func BenchmarkAblationWUECap(b *testing.B) {
	wbs := weather.WetBulbSeries(weather.OakRidge().HourlyYear(42))
	for _, variant := range []struct {
		name  string
		curve wue.Curve
	}{
		{"capped", wue.DefaultCurve()},
		{"uncapped", wue.Curve{Floor: 0.05, Cutoff: 2, Coeff: 0.026}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var maxWUE float64
			for i := 0; i < b.N; i++ {
				s := wue.Summarize(variant.curve.Series(wbs))
				maxWUE = s.Max
			}
			b.ReportMetric(maxWUE, "maxWUE(L/kWh)")
		})
	}
}

// BenchmarkAblationHydroSeasonality isolates the hydro availability cycle:
// without it, Marconi loses the wide EWF range that drives the paper's
// Fig. 6(a) story.
func BenchmarkAblationHydroSeasonality(b *testing.B) {
	for _, variant := range []struct {
		name   string
		mutate func(*energy.Region)
	}{
		{"seasonal", func(r *energy.Region) {}},
		{"flat", func(r *energy.Region) {
			r.HydroSeasonality = 0
			r.HydroNoise = 0
			r.HydroEvapSummerBoost = 0
		}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			region := energy.Italy()
			variant.mutate(&region)
			var spread float64
			for i := 0; i < b.N; i++ {
				ewf := energy.AnnualEWF(region.HourlyYear(42))
				spread = stats.Max(ewf) - stats.Min(ewf)
			}
			b.ReportMetric(spread, "EWFrange(L/kWh)")
		})
	}
}

// BenchmarkAblationMiniAMRWorkers scales the stencil worker pool.
func BenchmarkAblationMiniAMRWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[workers], func(b *testing.B) {
			cfg := miniamr.DefaultConfig()
			cfg.Workers = workers
			cfg.Steps = 8
			for i := 0; i < b.N; i++ {
				mesh, err := miniamr.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				_ = mesh.Run()
			}
		})
	}
}

// BenchmarkAblationSchedulerPolicy compares FCFS against EASY backfilling
// on the same trace and reports the mean wait each policy achieves.
func BenchmarkAblationSchedulerPolicy(b *testing.B) {
	trace, err := jobs.GenerateTrace(jobs.DefaultTrace(128), 42)
	if err != nil {
		b.Fatal(err)
	}
	type policy struct {
		name string
		run  func([]jobs.Job, int) (sched.Result, error)
	}
	for _, p := range []policy{
		{"fcfs", sched.FCFS},
		{"easy", sched.EASYBackfill},
	} {
		b.Run(p.name, func(b *testing.B) {
			var wait float64
			for i := 0; i < b.N; i++ {
				r, err := p.run(trace, 128)
				if err != nil {
					b.Fatal(err)
				}
				wait = r.MeanWait
			}
			b.ReportMetric(wait, "meanWait(h)")
		})
	}
}

// BenchmarkAblationRefineCadence sweeps the miniAMR regrid cadence: more
// frequent regridding tracks the sphere tighter at extra cost.
func BenchmarkAblationRefineCadence(b *testing.B) {
	for _, every := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "every1", 4: "every4", 8: "every8"}[every], func(b *testing.B) {
			cfg := miniamr.DefaultConfig()
			cfg.RefineEvery = every
			var peak float64
			for i := 0; i < b.N; i++ {
				mesh, err := miniamr.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				st := mesh.Run()
				peak = float64(st.MaxBlocks)
			}
			b.ReportMetric(peak, "peakBlocks")
		})
	}
}
