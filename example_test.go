package thirstyflops_test

import (
	"context"
	"fmt"

	"thirstyflops"
)

// ExampleEngine_Sweep runs the Fig. 14 energy-sourcing comparison
// through the Engine. The batch executes via the substrate-aware
// planner: requests sharing generator years run consecutively, and the
// planned lookups show up in CacheStats.Substrate.
func ExampleEngine_Sweep() {
	eng := thirstyflops.NewEngine(thirstyflops.WithWorkers(2))
	res, err := eng.Sweep(context.Background(), thirstyflops.SweepRequest{
		Systems: []string{"Marconi", "Fugaku"},
	})
	if err != nil {
		panic(err)
	}
	for _, s := range res.Systems {
		fmt.Printf("%s: %d scenarios\n", s.System, len(s.Scenarios))
	}
	sub := eng.CacheStats().Substrate
	fmt.Println("scheduled by the planner:", sub.PlannedHits+sub.PlannedMisses > 0)
	// Output:
	// Marconi: 5 scenarios
	// Fugaku: 5 scenarios
	// scheduled by the planner: true
}

// ExampleEngine_Ingest feeds one day of observed power into a live
// telemetry stream and assesses against it: the observed window is
// spliced over the simulated year, and the result's provenance records
// exactly which stream state it saw (the epoch advances with every
// accepted sample, so a stale cached answer is unreachable).
func ExampleEngine_Ingest() {
	stream, err := thirstyflops.NewStream("Frontier", 2023, 168)
	if err != nil {
		panic(err)
	}
	eng := thirstyflops.NewEngine(thirstyflops.WithLiveStream(stream))

	samples := make([]thirstyflops.Sample, 24)
	for h := range samples {
		samples[h] = thirstyflops.Sample{System: "Frontier", Hour: h, Power: 2.15e7}
	}
	accepted, err := eng.Ingest(samples...)
	if err != nil {
		panic(err)
	}

	res, err := eng.Assess(context.Background(), thirstyflops.AssessRequest{
		System: "Frontier",
		Source: thirstyflops.SourceLive,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("accepted %d hours; live epoch %d covers hours [%d, %d)\n",
		accepted, res.Live.Epoch, res.Live.WindowLo, res.Live.WindowHi)
	// Output: accepted 24 hours; live epoch 24 covers hours [0, 24)
}

// ExampleSystemConfig shows the minimal assessment flow.
func ExampleSystemConfig() {
	cfg, err := thirstyflops.SystemConfig("Polaris")
	if err != nil {
		panic(err)
	}
	fmt.Println(cfg.System.Name, "at", cfg.Site.Name, "PUE", float64(cfg.System.PUE))
	// Output: Polaris at Lemont PUE 1.65
}

// ExampleWetBulb evaluates the Stull wet-bulb approximation the WUE model
// is built on.
func ExampleWetBulb() {
	wb := thirstyflops.WetBulb(20, 50)
	fmt.Printf("%.1f°C\n", float64(wb))
	// Output: 13.7°C
}

// ExampleComputeWithdrawal derives gross withdrawal from a consumption
// figure using the Table 3 parameters.
func ExampleComputeWithdrawal() {
	params := thirstyflops.WithdrawalParams{
		ActualDischarge: 1000,
		OutfallFactor:   1.0,
		PollutantHazard: 1.0,
		ReuseRate:       0.25,
		PotableFraction: 0.5,
		PotableScarcity: 0.8, NonPotableScarcity: 0.2,
	}
	w, err := thirstyflops.ComputeWithdrawal(500, params)
	if err != nil {
		panic(err)
	}
	fmt.Printf("gross %.0f L, scarcity-weighted %.0f L\n", float64(w.Gross), float64(w.ScarcityWeighted))
	// Output: gross 1250 L, scarcity-weighted 625 L
}

// ExampleRankStartTimes scores candidate start hours of a fixed-energy
// job against intensity curves.
func ExampleRankStartTimes() {
	wi := []thirstyflops.LPerKWh{1, 5, 5, 5}
	ci := []thirstyflops.GCO2PerKWh{500, 500, 100, 500}
	s, err := thirstyflops.SeriesFromIntensities(1, wi, make([]thirstyflops.LPerKWh, len(wi)), ci)
	if err != nil {
		panic(err)
	}
	opts, err := thirstyflops.RankStartTimes(10, 1, []int{0, 2}, s)
	if err != nil {
		panic(err)
	}
	for _, o := range opts {
		fmt.Printf("hour %d: water rank %d, carbon rank %d\n", o.Hour, o.WaterRank, o.CarbonRank)
	}
	fmt.Println("disagree:", thirstyflops.RankingsDisagree(opts))
	// Output:
	// hour 0: water rank 1, carbon rank 2
	// hour 2: water rank 2, carbon rank 1
	// disagree: true
}

// ExampleMix_EWF computes the energy water factor of a custom mix.
func ExampleMix_EWF() {
	mix := thirstyflops.Mix{
		thirstyflops.Hydro: 0.5,
		thirstyflops.Wind:  0.5,
	}
	fmt.Printf("%.3f L/kWh\n", float64(mix.EWF(nil)))
	// Output: 8.005 L/kWh
}
