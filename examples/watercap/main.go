// Water capping: sharing a constrained water budget between the cooling
// plant and the power grid.
//
// Takeaway 5 of the paper: when water is scarce, HPC operators and city
// power providers must jointly decide how much water cools the datacenter
// and how much generates its electricity. This example caps Marconi's
// hourly water budget during a drought year and shows the coordinator
// shifting the grid toward a dry (gas/wind) dispatch — buying water with
// carbon — and, when that is not enough, shedding load.
//
// Run with: go run ./examples/watercap
package main

import (
	"fmt"
	"log"

	"thirstyflops"
)

func main() {
	cfg, err := thirstyflops.SystemConfig("Marconi")
	if err != nil {
		log.Fatal(err)
	}
	annual, err := cfg.Assess()
	if err != nil {
		log.Fatal(err)
	}
	meanHourly := float64(annual.Operational()) / float64(annual.Hourly.Len())
	fmt.Printf("Marconi uncoordinated demand: %.0f L/h mean, %v over the year\n\n",
		meanHourly, annual.Operational())

	fmt.Println("cap        mode            water saved   carbon cost   deficit hours")
	for _, frac := range []float64{0.9, 0.75, 0.6} {
		for _, curtail := range []bool{false, true} {
			policy := thirstyflops.WaterCapPolicy{
				HourlyCap:    thirstyflops.Liters(meanHourly * frac),
				DryMix:       thirstyflops.DefaultDryMix(),
				AllowCurtail: curtail,
			}
			r, err := thirstyflops.RunWaterCap(policy, annual.Hourly)
			if err != nil {
				log.Fatal(err)
			}
			mode := "shift only  "
			if curtail {
				mode = "shift+curtail"
			}
			fmt.Printf("%.2fx mean  %s   %9.1f%%   %+10.1f%%   %13d\n",
				frac, mode, r.WaterSavedPct(), r.CarbonCostPct(), r.DeficitHours)
		}
	}

	fmt.Println("\nthe drought playbook: the grid absorbs most of the cut by switching away from")
	fmt.Println("hydro (carbon rises); past ~40% cuts only load shedding keeps the basin whole.")

	// Where does the water actually go? Rank the systems per unit compute.
	fmt.Println("\nWater500 (litres per exaFLOP of delivered work):")
	entries, err := thirstyflops.Water500()
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("  %d. %-9s %7.1f L/EFLOP  (adjusted rank %d)\n",
			e.Rank, e.System, e.LitersPerEFLOP, e.AdjustedRank)
	}
}
