// Site selection: where should a new 10 MW HPC center go?
//
// Takeaways 2 and 6 of the paper: the water footprint of a site depends
// on its cooling climate (WUE), the water intensity of its grid (EWF),
// and the scarcity of the basins involved — and these rank differently
// than carbon does. This example sweeps candidate sites and prints the
// conflicting rankings a facility planner would face.
//
// Run with: go run ./examples/siteselection
package main

import (
	"fmt"
	"log"
	"sort"

	"thirstyflops"
)

// candidate pairs a climate with a grid and a basin scarcity.
type candidate struct {
	name     string
	site     thirstyflops.Site
	region   thirstyflops.Region
	scarcity thirstyflops.WSI
}

type verdict struct {
	name     string
	waterWI  float64 // L/kWh
	adjWI    float64 // scarcity-weighted
	carbonCI float64 // g/kWh
	annualL  float64 // projected annual litres for the 10 MW build
}

func main() {
	sites := thirstyflops.Sites()
	regions := thirstyflops.Regions()
	extra := thirstyflops.CandidateRegions()

	candidates := []candidate{
		{"Oak Ridge (TVA)", sites["Oak Ridge"], regions["Tennessee"], mustWSI("Oak Ridge")},
		{"Lemont (nuclear belt)", sites["Lemont"], regions["Illinois"], mustWSI("Lemont")},
		{"Bologna (hydro imports)", sites["Bologna"], regions["Italy"], mustWSI("Bologna")},
		// Hypothetical new basins: reuse paper climatologies with the
		// candidate grids a planner would actually compare.
		{"Columbia basin (PNW hydro)", pnwSite(), extra[0], 0.18},
		{"Texas plains (gas+wind)", texasSite(), extra[1], 0.45},
		{"Arizona desert (solar+nuclear)", azSite(), extra[2], 0.92},
	}

	// Prototype machine: a Polaris-like 10 MW system relocated to each
	// candidate site.
	base, err := thirstyflops.SystemConfig("Polaris")
	if err != nil {
		log.Fatal(err)
	}

	verdicts := make([]verdict, 0, len(candidates))
	for _, cand := range candidates {
		cfg := base
		cfg.System.Name = "NewCenter@" + cand.name
		cfg.System.PeakPower = 10e6 // 10 MW
		cfg.Site = cand.site
		cfg.Region = cand.region
		cfg.Scarcity = thirstyflops.ScarcityProfile{Direct: cand.scarcity}
		a, err := cfg.Assess()
		if err != nil {
			log.Fatal(err)
		}
		_, _, wi := a.WaterIntensity()
		verdicts = append(verdicts, verdict{
			name:     cand.name,
			waterWI:  float64(wi),
			adjWI:    float64(a.AdjustedWaterIntensity(cfg.Scarcity)),
			carbonCI: float64(a.MeanCarbonIntensity()),
			annualL:  float64(a.Operational()),
		})
	}

	printRanking("raw water intensity (L/kWh)", verdicts, func(v verdict) float64 { return v.waterWI })
	printRanking("scarcity-adjusted water intensity", verdicts, func(v verdict) float64 { return v.adjWI })
	printRanking("carbon intensity (gCO2/kWh)", verdicts, func(v verdict) float64 { return v.carbonCI })

	fmt.Println("planner's dilemma: the best-water, best-adjusted-water, and best-carbon sites differ —")
	fmt.Println("water-scarcity-unaware site selection is suboptimal (paper Takeaways 2 and 6).")
}

func printRanking(title string, vs []verdict, metric func(verdict) float64) {
	sorted := append([]verdict(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return metric(sorted[i]) < metric(sorted[j]) })
	fmt.Printf("\n== ranked by %s (best first) ==\n", title)
	for i, v := range sorted {
		fmt.Printf("  %d. %-28s %8.2f   (annual water %.0f ML)\n",
			i+1, v.name, metric(v), v.annualL/1e6)
	}
}

func mustWSI(site string) thirstyflops.WSI {
	w, err := thirstyflops.SiteScarcity(site)
	if err != nil {
		log.Fatal(err)
	}
	return w
}

// Hypothetical site climatologies for the non-paper basins, built through
// the public Site type.
func pnwSite() thirstyflops.Site {
	return thirstyflops.Site{
		Name: "Columbia", Country: "US", Lat: 46.2, Lon: -119.1,
		MeanTemp: 12, SeasonalAmp: 10, DiurnalAmp: 6,
		MeanRH: 60, SeasonalRHAmp: 10, WarmestDay: 205, NoiseStd: 1.8,
	}
}

func texasSite() thirstyflops.Site {
	return thirstyflops.Site{
		Name: "Abilene", Country: "US", Lat: 32.4, Lon: -99.7,
		MeanTemp: 18.5, SeasonalAmp: 10.5, DiurnalAmp: 7,
		MeanRH: 60, SeasonalRHAmp: 6, WarmestDay: 205, NoiseStd: 2.0,
	}
}

func azSite() thirstyflops.Site {
	return thirstyflops.Site{
		Name: "Phoenix", Country: "US", Lat: 33.4, Lon: -112.1,
		MeanTemp: 23.5, SeasonalAmp: 10.5, DiurnalAmp: 7,
		MeanRH: 35, SeasonalRHAmp: 8, WarmestDay: 200, NoiseStd: 1.6,
	}
}
