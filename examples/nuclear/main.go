// Nuclear-powered HPC: carbon savior, water question mark.
//
// Sec. 5 of the paper: hyperscalers are commissioning small nuclear
// reactors for carbon-free datacenter power, but nuclear plants condense
// steam with large volumes of water. This example sweeps the five Fig. 14
// energy-sourcing scenarios across all four systems and prints where
// nuclear helps, where it hurts, and why the answer is location-dependent
// (Takeaway 10).
//
// Run with: go run ./examples/nuclear
package main

import (
	"fmt"
	"log"

	"thirstyflops"
)

func main() {
	cfgs, err := thirstyflops.AllSystemConfigs()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("savings vs current energy mix (positive = footprint reduced)")
	fmt.Println()
	fmt.Printf("%-10s %-38s %10s %10s\n", "system", "scenario", "water", "carbon")
	fmt.Println("-----------------------------------------------------------------------")
	type nuclearCase struct {
		system string
		water  float64
	}
	var nuclearCases []nuclearCase
	for _, cfg := range cfgs {
		results, err := cfg.ScenarioSweep()
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			if r.Scenario == thirstyflops.CurrentMixScenario {
				continue
			}
			fmt.Printf("%-10s %-38s %+9.0f%% %+9.0f%%\n",
				r.System, r.Scenario, r.WaterSavingPct, r.CarbonSavingPct)
			if r.Scenario == thirstyflops.Nuclear100Scenario {
				nuclearCases = append(nuclearCases, nuclearCase{r.System, r.WaterSavingPct})
			}
		}
		fmt.Println()
	}

	fmt.Println("nuclear verdict by location:")
	for _, c := range nuclearCases {
		verdict := "water win — grid is thirstier than a nuclear fleet"
		if c.water < 0 {
			verdict = "water loss — local grid already beats nuclear on water"
		}
		fmt.Printf("  %-10s %+5.0f%%  %s\n", c.system, c.water, verdict)
	}
	fmt.Println("\nTakeaway 10: naively powering HPC with nuclear reactors to cut carbon can be")
	fmt.Println("significantly sub-optimal for water, depending on the site's current energy mix.")
}
