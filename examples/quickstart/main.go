// Quickstart: assess the water footprint of one supercomputer.
//
// This is the minimal ThirstyFLOPS workflow: pick a bundled system,
// simulate a year of operation, and read off the Eq. 1 decomposition —
// embodied, direct (cooling), and indirect (energy generation) water.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"thirstyflops"
)

func main() {
	cfg, err := thirstyflops.SystemConfig("Frontier")
	if err != nil {
		log.Fatal(err)
	}

	// One simulated year of operation: weather drives the cooling water,
	// the regional grid drives the generation water and carbon.
	annual, err := cfg.Assess()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, one year of operation\n", annual.System)
	fmt.Printf("  IT energy:       %v\n", annual.Energy)
	fmt.Printf("  direct water:    %v (cooling towers)\n", annual.Direct)
	fmt.Printf("  indirect water:  %v (electricity generation)\n", annual.Indirect)
	fmt.Printf("  carbon:          %v\n", annual.Carbon)

	// Water intensity (Eq. 8) and its scarcity adjustment (Eq. 9).
	direct, indirect, total := annual.WaterIntensity()
	fmt.Printf("  water intensity: %v = %v direct + %v indirect\n", total, direct, indirect)
	fmt.Printf("  WSI-adjusted:    %v\n", annual.AdjustedWaterIntensity(cfg.Scarcity))

	// The one-time embodied footprint (Eq. 2-5).
	bd, err := cfg.EmbodiedBreakdown()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nembodied footprint: %v\n", bd.Total())
	fmt.Printf("  storage-heavy: HDD alone carries %.0f%% (the 679 PB Orion filesystem)\n",
		bd.Share(thirstyflops.CompHDD)*100)

	// Full lifetime accounting (Eq. 1).
	life, err := cfg.Lifetime(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n6-year lifetime total: %v (embodied %.1f%%)\n",
		life.Total(), 100*float64(life.Embodied)/float64(life.Total()))
}
