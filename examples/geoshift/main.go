// Geo-distributed shifting: moving deferrable work between supercomputers.
//
// Takeaway 7 of the paper: workload shifting purely on energy can still
// incur disproportionately high water use. This example builds the fleet
// of all four paper systems, streams deferrable jobs at it for a year,
// and compares five dispatch policies — including a scarcity-aware one
// that knows a litre in Chicago is not a litre in Oak Ridge.
//
// Run with: go run ./examples/geoshift
package main

import (
	"fmt"
	"log"

	"thirstyflops"
)

func main() {
	cfgs, err := thirstyflops.AllSystemConfigs()
	if err != nil {
		log.Fatal(err)
	}
	var centers []thirstyflops.GeoCenter
	for _, cfg := range cfgs {
		c, err := thirstyflops.GeoCenterFrom(cfg, 0.2) // 20% of peak is shiftable
		if err != nil {
			log.Fatal(err)
		}
		centers = append(centers, c)
		fmt.Printf("center %-9s headroom %6.0f kW, basin WSI %.2f\n",
			c.Name, c.HeadroomKW, float64(c.WSI))
	}

	jobs := thirstyflops.GeoSyntheticJobs(300, 8760, 8, 500, 42)
	fmt.Printf("\ndispatching %d deferrable jobs (mean 500 kW x ~8h) over one year\n\n", len(jobs))

	outcomes, err := thirstyflops.GeoCompareAll(centers, jobs)
	if err != nil {
		log.Fatal(err)
	}

	var blind, waterAware thirstyflops.GeoOutcome
	fmt.Printf("%-15s %12s %14s %14s\n", "policy", "water", "adj. water", "carbon")
	for _, o := range outcomes {
		fmt.Printf("%-15s %12s %14s %14s\n",
			o.Policy, o.Water, o.AdjustedWater, o.Carbon)
		switch o.Policy {
		case thirstyflops.EnergyGreedy:
			blind = o
		case thirstyflops.WaterGreedy:
			waterAware = o
		}
	}

	saved := float64(blind.Water) - float64(waterAware.Water)
	fmt.Printf("\nwater left on the table by energy-blind shifting: %.1f ML (%.1f%%)\n",
		saved/1e6, 100*saved/float64(blind.Water))
	fmt.Println("Takeaway 7: energy-aware operation is not water-optimal operation —")
	fmt.Println("dispatchers need the water intensity and scarcity of every destination.")
}
