// Scheduling: when should a fixed-energy job run?
//
// The paper's Fig. 13 experiment: a miniAMR run consumes the same energy
// at every start time, yet its water and carbon footprints differ by the
// hour because WUE, EWF, and carbon intensity all move. This example runs
// the bundled AMR mini-app, sweeps start times on a Frontier-like system,
// and shows the water-best and carbon-best choices diverging — then lets
// the multi-metric co-optimizer arbitrate (Takeaway 9 / Sec. 6a).
//
// Run with: go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"thirstyflops"
)

func main() {
	// 1. Run the workload to establish its (deterministic) energy.
	mesh, err := thirstyflops.NewMiniAMR(thirstyflops.DefaultMiniAMRConfig())
	if err != nil {
		log.Fatal(err)
	}
	st := mesh.Run()
	fmt.Printf("miniAMR: %d steps, %d cell updates, %d refines, %d coarsens, peak %d blocks (%.1fms)\n",
		st.Steps, st.CellUpdates, st.Refines, st.Coarsens, st.MaxBlocks,
		float64(st.WallTime.Microseconds())/1000)

	// Scale to a production-size run: the paper used a dual-socket Xeon
	// host; we model a 4-hour, 2 kWh job.
	const durationHours = 4
	jobEnergy := thirstyflops.KWh(2.0)
	perHour := thirstyflops.KWh(float64(jobEnergy) / durationHours)
	fmt.Printf("job model: %v total over %dh — identical at every start time\n\n", jobEnergy, durationHours)

	// 2. Assess the hosting system to obtain hourly intensity curves.
	cfg, err := thirstyflops.SystemConfig("Frontier")
	if err != nil {
		log.Fatal(err)
	}
	annual, err := cfg.Assess()
	if err != nil {
		log.Fatal(err)
	}
	// 3. Seven candidate start times across a July day, ranked directly
	// against the assessed hourly timeline.
	base := 195 * 24
	candidates := make([]int, 7)
	for i := range candidates {
		candidates[i] = base + 4*i
	}
	opts, err := thirstyflops.RankStartTimes(perHour, durationHours, candidates, annual.Hourly)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("start     water (L)  rank   carbon (g)  rank")
	for i, o := range opts {
		fmt.Printf("+%2dh      %8.2f   %d      %9.1f   %d\n",
			candidates[i]-base, float64(o.Water), o.WaterRank, float64(o.Carbon), o.CarbonRank)
	}
	if thirstyflops.RankingsDisagree(opts) {
		fmt.Println("\n→ the water-optimal and carbon-optimal start times DIFFER (Fig. 13).")
	}

	// 4. Arbitrate with the weighted co-optimizer.
	energyCost := make([]float64, len(opts))
	waterCost := make([]float64, len(opts))
	carbonCost := make([]float64, len(opts))
	for i, o := range opts {
		energyCost[i] = float64(jobEnergy) // constant → neutral
		waterCost[i] = float64(o.Water)
		carbonCost[i] = float64(o.Carbon)
	}
	for _, w := range []thirstyflops.Weights{
		{Water: 1},
		{Carbon: 1},
		{Water: 1, Carbon: 1},
		{Water: 3, Carbon: 1},
	} {
		best, err := thirstyflops.CoOptimize(candidates, energyCost, waterCost, carbonCost, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("co-optimized start (water=%v carbon=%v): +%dh\n", w.Water, w.Carbon, best-base)
	}

	// 5. The same divergence matters at fleet scale: schedule a whole
	// trace and compare aggregate wait under FCFS vs EASY backfilling.
	trace, err := thirstyflops.GenerateTrace(thirstyflops.DefaultTrace(512), 42)
	if err != nil {
		log.Fatal(err)
	}
	fcfs, err := thirstyflops.FCFS(trace, 512)
	if err != nil {
		log.Fatal(err)
	}
	easy, err := thirstyflops.EASYBackfill(trace, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch simulation over %d jobs: FCFS mean wait %.2fh, EASY %.2fh (util %.0f%% vs %.0f%%)\n",
		len(trace), fcfs.MeanWait, easy.MeanWait, fcfs.Utilization*100, easy.Utilization*100)
	fmt.Println("a water/carbon-aware scheduler can shift queued work into cleaner hours at no energy cost.")
}
