package thirstyflops

import (
	"math"
	"testing"
)

func TestSystemNames(t *testing.T) {
	names := SystemNames()
	want := []string{"Marconi", "Fugaku", "Polaris", "Frontier"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestEndToEndAssessment(t *testing.T) {
	cfg, err := SystemConfig("Frontier")
	if err != nil {
		t.Fatal(err)
	}
	a, err := cfg.Assess()
	if err != nil {
		t.Fatal(err)
	}
	if a.Operational() <= 0 {
		t.Fatal("no operational footprint")
	}
	bd, err := cfg.EmbodiedBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() <= 0 {
		t.Fatal("no embodied footprint")
	}
	f, err := cfg.Lifetime(6)
	if err != nil {
		t.Fatal(err)
	}
	if f.Total() != f.Embodied+f.Direct+f.Indirect {
		t.Error("Eq. 1 broken through the facade")
	}
}

func TestFacadeScenarioSweep(t *testing.T) {
	cfg, err := SystemConfig("Marconi")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := cfg.ScenarioSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("scenario count = %d", len(rs))
	}
	found := false
	for _, r := range rs {
		if r.Scenario == Nuclear100Scenario && r.CarbonSavingPct > 80 {
			found = true
		}
	}
	if !found {
		t.Error("nuclear scenario should save >80% carbon")
	}
}

func TestFacadeCustomSystem(t *testing.T) {
	// Define a small custom system entirely through the public API and
	// run the embodied model on it.
	base, err := SystemByName("Polaris")
	if err != nil {
		t.Fatal(err)
	}
	custom := base
	custom.Name = "MiniCluster"
	custom.Nodes = 16
	custom.Storage = []StoragePool{{Name: "flash", Kind: SSD, Capacity: 50_000}}
	bd, err := SystemEmbodied(custom, DefaultEmbodiedParams())
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() <= 0 {
		t.Error("custom system has no embodied footprint")
	}
	big, _ := SystemEmbodied(base, DefaultEmbodiedParams())
	if bd.Total() >= big.Total() {
		t.Error("16-node system should embody less water than 560-node Polaris")
	}
}

func TestFacadeWetBulb(t *testing.T) {
	wb := WetBulb(20, 50)
	if math.Abs(float64(wb)-13.7) > 0.2 {
		t.Errorf("WetBulb(20,50) = %v", wb)
	}
}

func TestFacadeSchedulingFlow(t *testing.T) {
	trace, err := GenerateTrace(DefaultTrace(32), 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := EASYBackfill(trace, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Placements) != len(trace) {
		t.Error("jobs lost in scheduling")
	}
}

func TestFacadeMiniAMR(t *testing.T) {
	mesh, err := NewMiniAMR(DefaultMiniAMRConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := mesh.Run()
	if st.CellUpdates <= 0 {
		t.Error("mini-app did no work")
	}
	e := DefaultMiniAMREnergyModel().Energy(st)
	if e <= 0 {
		t.Error("mini-app energy should be positive")
	}
}

func TestFacadeRegionsAndSites(t *testing.T) {
	if len(Regions()) != 4 || len(Sites()) != 4 {
		t.Error("paper regions/sites missing")
	}
	if len(CandidateRegions()) < 3 {
		t.Error("candidate regions missing")
	}
	w, err := SiteScarcity("Lemont")
	if err != nil || w <= 0 {
		t.Errorf("SiteScarcity(Lemont) = %v, %v", w, err)
	}
	if len(ParameterChecklist()) < 19 {
		t.Error("parameter checklist incomplete")
	}
}

func TestFacadePowerLog(t *testing.T) {
	sys, _ := SystemByName("Marconi")
	log := PowerLogFor(sys, DefaultDemand(), 1, 2022)
	if err := log.Validate(); err != nil {
		t.Fatal(err)
	}
	if log.Energy() <= 0 {
		t.Error("empty energy")
	}
}

func TestFacadeGeoShifting(t *testing.T) {
	cfgs, err := AllSystemConfigs()
	if err != nil {
		t.Fatal(err)
	}
	centers := make([]GeoCenter, 0, 2)
	for _, cfg := range cfgs[:2] {
		c, err := GeoCenterFrom(cfg, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		centers = append(centers, c)
	}
	jobsIn := GeoSyntheticJobs(20, 8760, 4, 300, 1)
	o, err := GeoDispatch(centers, jobsIn, WaterGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if o.Energy <= 0 || o.Water <= 0 {
		t.Error("dispatch produced no footprint")
	}
	outs, err := GeoCompareAll(centers, jobsIn)
	if err != nil || len(outs) != 5 {
		t.Fatalf("CompareAll: %v, %d outcomes", err, len(outs))
	}
}

func TestFacadeSensitivity(t *testing.T) {
	cfg, err := SystemConfig("Marconi")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SensitivityAnalyze(cfg, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no sensitivity results")
	}
	if rs[0].SwingPct == 0 {
		t.Error("top factor should have nonzero swing")
	}
}

func TestFacadeWaterCap(t *testing.T) {
	cfg, err := SystemConfig("Marconi")
	if err != nil {
		t.Fatal(err)
	}
	a, err := cfg.Assess()
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(a.Operational()) / float64(a.Hourly.Len())
	p := WaterCapPolicy{HourlyCap: Liters(mean * 0.8), DryMix: DefaultDryMix()}
	r, err := RunWaterCap(p, a.Hourly)
	if err != nil {
		t.Fatal(err)
	}
	if r.WaterSavedPct() <= 0 {
		t.Error("capping should save water on Marconi")
	}
}

func TestFacadeWater500(t *testing.T) {
	entries, err := Water500()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || entries[0].Rank != 1 {
		t.Errorf("Water500 malformed: %+v", entries)
	}
}

func TestFacadeUpgrade(t *testing.T) {
	oldCfg, err := SystemConfig("Marconi")
	if err != nil {
		t.Fatal(err)
	}
	newCfg, err := SystemConfig("Frontier")
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeUpgrade(UpgradePlan{Old: oldCfg, New: newCfg, HorizonYears: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !a.WaterPositive() {
		t.Error("generation upgrade should be water-positive")
	}
}
