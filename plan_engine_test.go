package thirstyflops

// Planner-effectiveness tests and benchmarks: a shuffled multi-site
// sweep executed through the substrate-aware planner must generate each
// shared substrate year exactly once, where the unplanned arrival-order
// baseline regenerates years all sweep long under a bounded substrate
// cache. BenchmarkSweepPlanned / BenchmarkSweepUnplanned record the
// wall-clock side of the same story in BENCH_PR4.json, gated by
// cmd/benchcheck in `make bench`.

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"thirstyflops/internal/fingerprint"
	"thirstyflops/internal/plan"
	"thirstyflops/internal/substrate"
)

// sweepSystems are the four bundled machines: four distinct sites and
// grid regions, one shared demand model.
var sweepSystems = []string{"Marconi", "Fugaku", "Polaris", "Frontier"}

// interleavedSweep deals systems x seeds x years into the planner's
// worst-case arrival order — year-major, so consecutive requests never
// share a substrate — the shape of a multi-tenant sweep arriving as an
// unordered batch.
func interleavedSweep(systems []string, seeds []uint64, years []int) []AssessRequest {
	var reqs []AssessRequest
	for _, year := range years {
		for si := range seeds {
			for _, sys := range systems {
				y := year
				reqs = append(reqs, AssessRequest{System: sys, Seed: &seeds[si], Year: &y})
			}
		}
	}
	return reqs
}

// restoreSubstrate pins the process-global substrate layer back to its
// default shape after a test that resizes it.
func restoreSubstrate(t *testing.T) {
	t.Helper()
	t.Cleanup(func() { substrate.SetCapacity(substrate.DefaultCapacity) })
}

// generationsDuring runs fn against a freshly reset substrate layer of
// the given capacity and returns how many years it generated (layer
// misses; every miss is one generator run).
func generationsDuring(t *testing.T, capacity int, fn func()) uint64 {
	t.Helper()
	substrate.SetCapacity(capacity)
	before := substrate.Stats()
	fn()
	after := substrate.Stats()
	return after.Misses - before.Misses
}

// TestPlannerNeverRegeneratesSharedSubstrate is the planner's core
// property: for any arrival order of a sweep whose requests share
// substrates, planned sequential execution generates each distinct year
// exactly once — even with a substrate cache squeezed to two entries —
// because requests sharing a substrate run consecutively.
func TestPlannerNeverRegeneratesSharedSubstrate(t *testing.T) {
	restoreSubstrate(t)
	seeds := []uint64{1, 2}
	years := []int{2030, 2031, 2032}
	base := interleavedSweep(sweepSystems, seeds, years)

	// Distinct years per cache: grid/WUE/wet-bulb are (site-or-region,
	// seed)-keyed — systems x seeds each — while the bundled systems
	// share one demand model, so utilization is seeds-keyed.
	groups := len(sweepSystems) * len(seeds)
	wantGenerations := uint64(3*groups + len(seeds))

	for trial := 0; trial < 8; trial++ {
		reqs := append([]AssessRequest(nil), base...)
		rand.New(rand.NewSource(int64(trial))).Shuffle(len(reqs), func(i, j int) {
			reqs[i], reqs[j] = reqs[j], reqs[i]
		})
		eng := NewEngine(WithCache(0), WithWorkers(1))
		got := generationsDuring(t, 2, func() {
			if _, err := eng.AssessMany(context.Background(), reqs); err != nil {
				t.Fatal(err)
			}
		})
		if got != wantGenerations {
			t.Fatalf("trial %d: planned execution generated %d years, want exactly %d (one per distinct substrate year)",
				trial, got, wantGenerations)
		}
		// The engine's traced counters tally with the layer: every
		// generation of this run — including wet-bulb years generated
		// inside WUE misses — is attributed to planned execution.
		stats := eng.CacheStats().Substrate
		if stats.PlannedMisses != wantGenerations {
			t.Errorf("trial %d: CacheStats planned misses = %d, want %d", trial, stats.PlannedMisses, wantGenerations)
		}
		if stats.UnplannedHits != 0 || stats.UnplannedMisses != 0 {
			t.Errorf("trial %d: batch execution leaked into unplanned counters: %+v", trial, stats)
		}
	}
}

// TestPlannerBeatsUnplannedOrder is the acceptance assertion behind the
// BENCH_PR4 benchmarks: the same shuffled sweep, same engine settings,
// same squeezed substrate cache — planned execution performs measurably
// fewer substrate generations than unplanned arrival order.
func TestPlannerBeatsUnplannedOrder(t *testing.T) {
	restoreSubstrate(t)
	seeds := []uint64{1, 2}
	years := []int{2030, 2031, 2032}
	reqs := interleavedSweep(sweepSystems, seeds, years)

	run := func(planner bool) uint64 {
		eng := NewEngine(WithCache(0), WithWorkers(1), WithPlanner(planner))
		return generationsDuring(t, 2, func() {
			if _, err := eng.AssessMany(context.Background(), reqs); err != nil {
				t.Fatal(err)
			}
		})
	}
	planned := run(true)
	unplanned := run(false)
	if planned*2 > unplanned {
		t.Fatalf("planned execution generated %d years vs %d unplanned; want at least a 2x reduction",
			planned, unplanned)
	}
	t.Logf("substrate generations: planned %d, unplanned %d (%.1fx fewer)",
		planned, unplanned, float64(unplanned)/float64(planned))
}

// TestSweepAndSingleAssessSplitSubstrateCounters asserts the
// planned/unplanned attribution: Engine.Sweep batches execute as
// planned, one-off Assess calls as unplanned.
func TestSweepAndSingleAssessSplitSubstrateCounters(t *testing.T) {
	restoreSubstrate(t)
	substrate.SetCapacity(substrate.DefaultCapacity)
	eng := NewEngine(WithCache(0))
	if _, err := eng.Sweep(context.Background(), SweepRequest{Systems: []string{"Marconi", "Fugaku"}}); err != nil {
		t.Fatal(err)
	}
	mid := eng.CacheStats().Substrate
	if mid.PlannedHits+mid.PlannedMisses == 0 {
		t.Error("Sweep recorded no planned substrate lookups")
	}
	if mid.UnplannedHits+mid.UnplannedMisses != 0 {
		t.Errorf("Sweep recorded unplanned lookups: %+v", mid)
	}
	if _, err := eng.Assess(context.Background(), AssessRequest{System: "Polaris"}); err != nil {
		t.Fatal(err)
	}
	end := eng.CacheStats().Substrate
	if end.UnplannedHits+end.UnplannedMisses == 0 {
		t.Error("single Assess recorded no unplanned substrate lookups")
	}
}

// TestAssessBatchReportsEveryCompletion asserts the job queue's progress
// contract: onResult fires exactly once per request, with res nil
// exactly when err is non-nil, and the returned slice matches.
func TestAssessBatchReportsEveryCompletion(t *testing.T) {
	eng := NewEngine(WithWorkers(2))
	reqs := []AssessRequest{
		{System: "Marconi"}, {System: "Atlantis"}, {System: "Fugaku"}, {System: "Marconi"},
	}
	type event struct {
		res *AssessResult
		err error
	}
	var mu sync.Mutex
	events := map[int][]event{}
	results, err := eng.AssessBatch(context.Background(), reqs, func(i int, res *AssessResult, err error) {
		mu.Lock()
		events[i] = append(events[i], event{res, err})
		mu.Unlock()
	})
	if err == nil {
		t.Fatal("joined error missing the unknown-system failure")
	}
	if len(events) != len(reqs) {
		t.Fatalf("onResult covered %d of %d requests", len(events), len(reqs))
	}
	for i, evs := range events {
		if len(evs) != 1 {
			t.Fatalf("request %d reported %d times", i, len(evs))
		}
		if (evs[0].res == nil) != (evs[0].err != nil) {
			t.Fatalf("request %d: res/err not mutually exclusive: %+v", i, evs[0])
		}
		if (results[i] == nil) != (evs[0].res == nil) {
			t.Fatalf("request %d: returned slice disagrees with onResult", i)
		}
	}
	if results[1] != nil || results[0] == nil || results[2] == nil || results[3] == nil {
		t.Fatalf("unexpected result shape: %v", results)
	}
}

// TestBatchRequestExpand covers the job-submission shape: cross-product
// expansion order, defaults, flag propagation to both forms, and the
// both-forms conflict.
func TestBatchRequestExpand(t *testing.T) {
	seeds := []uint64{1, 2}
	years := []int{2023, 2024}
	reqs, err := (BatchRequest{
		Systems: []string{"Marconi", "Fugaku"}, Seeds: seeds, Years: years, Scenarios: true,
	}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 8 {
		t.Fatalf("expanded to %d, want 8", len(reqs))
	}
	// System-outer, seeds, then years: index 5 = Fugaku, seed 1, 2024.
	r := reqs[5]
	if r.System != "Fugaku" || *r.Seed != 1 || *r.Year != 2024 || !r.Scenarios {
		t.Fatalf("request 5 = %+v", r)
	}

	// An empty template sweeps all bundled systems with defaults.
	reqs, err = (BatchRequest{}).Expand()
	if err != nil || len(reqs) != len(SystemNames()) {
		t.Fatalf("default expansion = %d requests, err %v", len(reqs), err)
	}
	if reqs[0].Seed != nil || reqs[0].Year != nil {
		t.Fatal("default expansion should keep configuration defaults")
	}

	// Top-level flags reach explicit request lists too, without
	// clearing per-request flags.
	reqs, err = (BatchRequest{
		Requests:   []AssessRequest{{System: "Marconi"}, {System: "Fugaku", Scenarios: true}},
		Withdrawal: true,
	}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reqs[0].Withdrawal || !reqs[1].Withdrawal || reqs[0].Scenarios || !reqs[1].Scenarios {
		t.Fatalf("flag propagation wrong: %+v", reqs)
	}

	// Setting both forms is a client error.
	if _, err := (BatchRequest{
		Requests: []AssessRequest{{System: "Marconi"}}, Systems: []string{"Fugaku"},
	}).Expand(); err == nil {
		t.Fatal("both-forms batch accepted")
	}

	// Units sizes the expansion without allocating it — including
	// cross-products far too large to ever materialize.
	if n := (BatchRequest{Systems: []string{"a", "b"}, Seeds: seeds, Years: years}).Units(); n != 8 {
		t.Fatalf("Units = %d, want 8", n)
	}
	huge := BatchRequest{
		Systems: make([]string, 100000),
		Seeds:   make([]uint64, 100000),
		Years:   make([]int, 100000),
	}
	if n := huge.Units(); n != 1e15 {
		t.Fatalf("huge Units = %d, want 1e15", n)
	}
}

// benchSweep is the shuffled multi-site sweep the BENCH_PR4 pair runs: 4
// systems x 3 years in worst-case interleave, 12 assessments over 4
// distinct substrates.
func benchSweep() []AssessRequest {
	seed := uint64(7)
	return interleavedSweep(sweepSystems, []uint64{seed}, []int{2030, 2031, 2032})
}

// benchSweepEngine runs the planner-effectiveness benchmark body: the
// engine result cache is disabled (every request re-derives from the
// substrate) and the substrate layer is squeezed to two entries per
// cache so execution order is what decides how often years regenerate.
func benchSweepEngine(b *testing.B, planner bool) {
	b.ReportAllocs()
	defer substrate.SetCapacity(substrate.DefaultCapacity)
	substrate.SetCapacity(2)
	eng := NewEngine(WithCache(0), WithWorkers(4), WithPlanner(planner))
	reqs := benchSweep()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.AssessMany(ctx, reqs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stats := eng.CacheStats().Substrate
	misses := stats.PlannedMisses + stats.UnplannedMisses
	b.ReportMetric(float64(misses)/float64(b.N), "generations/op")
}

// BenchmarkSweepPlanned: the shuffled sweep through the substrate-aware
// planner. Gated against BENCH_PR4.json.
func BenchmarkSweepPlanned(b *testing.B) { benchSweepEngine(b, true) }

// BenchmarkSweepUnplanned: the same sweep in arrival order — the
// pre-planner baseline the BENCH_PR4 record keeps for comparison.
func BenchmarkSweepUnplanned(b *testing.B) { benchSweepEngine(b, false) }

// BenchmarkPlanBuild prices the planning step itself on a 1024-request
// batch, to show scheduling is noise next to one saved generation.
func BenchmarkPlanBuild(b *testing.B) {
	b.ReportAllocs()
	items := make([]plan.Item, 1024)
	for i := range items {
		h := fingerprint.New()
		h.Int(i % 96) // ~96 distinct substrates
		items[i] = plan.Item{Index: i, Substrate: h.Sum()}
		for c := range items[i].Cluster {
			h.Reset()
			h.Int(c)
			h.Int(i % (24 >> c)) // coarser sharing at higher priorities
			items[i].Cluster[c] = h.Sum()
		}
		h.Release()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := plan.Build(items, 8)
		if p.Items() != len(items) {
			b.Fatal("plan dropped items")
		}
	}
}
