module thirstyflops

go 1.22
