package thirstyflops_test

// One benchmark per table and figure of the paper's evaluation (see
// DESIGN.md's per-experiment index), plus micro-benchmarks of the hot
// modeling paths. Each experiment benchmark regenerates the full artifact
// — run `go test -bench=. -benchmem` to both time them and confirm they
// produce output.

import (
	"testing"

	"thirstyflops/internal/core"
	"thirstyflops/internal/energy"
	"thirstyflops/internal/experiments"
	"thirstyflops/internal/jobs"
	"thirstyflops/internal/miniamr"
	"thirstyflops/internal/sched"
	"thirstyflops/internal/weather"
	"thirstyflops/internal/wue"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := experiments.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Text) == 0 {
			b.Fatal("empty artifact")
		}
	}
}

// --- Tables ---

func BenchmarkTable1Systems(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTable2Parameters(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3Withdrawal(b *testing.B) { benchExperiment(b, "table3") }

// --- Figures ---

func BenchmarkFig1USMaps(b *testing.B)            { benchExperiment(b, "fig1") }
func BenchmarkFig3EmbodiedBreakdown(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig4RatioHeatmap(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFig5SourceFactors(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFig6EWFWUEVariation(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7DirectIndirect(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkFig8AdjustedIntensity(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig9IndirectWSI(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10CountyWSI(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig11EnergyVsWater(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12WaterVsCarbon(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13StartTimeRanking(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14NuclearScenarios(b *testing.B) { benchExperiment(b, "fig14") }

// --- Micro-benchmarks of the hot modeling paths ---

func BenchmarkWetBulbStull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = weather.WetBulb(25, 60)
	}
}

func BenchmarkWeatherYear(b *testing.B) {
	site := weather.OakRidge()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = site.HourlyYear(uint64(i))
	}
}

func BenchmarkGridYear(b *testing.B) {
	region := energy.Italy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = region.HourlyYear(uint64(i))
	}
}

func BenchmarkWUECurveSeries(b *testing.B) {
	curve := wue.DefaultCurve()
	wbs := weather.WetBulbSeries(weather.Kobe().HourlyYear(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = curve.Series(wbs)
	}
}

func BenchmarkWUECurveTable(b *testing.B) {
	tab := wue.DefaultCurve().Tabulate(50)
	wbs := weather.WetBulbSeries(weather.Kobe().HourlyYear(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.Series(wbs)
	}
}

func BenchmarkAssessYear(b *testing.B) {
	cfg, err := core.ConfigFor("Frontier")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Assess(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScenarioSweep(b *testing.B) {
	cfg, err := core.ConfigFor("Marconi")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.ScenarioSweep(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConfigFingerprint(b *testing.B) {
	cfg, err := core.ConfigFor("Frontier")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cfg.Fingerprint()
	}
}

func BenchmarkMiniAMRStep(b *testing.B) {
	cfg := miniamr.DefaultConfig()
	cfg.Steps = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mesh, err := miniamr.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = mesh.Run()
	}
}

func BenchmarkEASYBackfill(b *testing.B) {
	trace, err := jobs.GenerateTrace(jobs.DefaultTrace(256), 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.EASYBackfill(trace, 256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFCFS(b *testing.B) {
	trace, err := jobs.GenerateTrace(jobs.DefaultTrace(256), 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.FCFS(trace, 256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStartTimeRanking(b *testing.B) {
	cfg, err := core.ConfigFor("Frontier")
	if err != nil {
		b.Fatal(err)
	}
	a, err := cfg.Assess()
	if err != nil {
		b.Fatal(err)
	}
	candidates := []int{0, 4, 8, 12, 16, 20, 24}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.RankStartTimes(0.5, 4, candidates, a.Hourly); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStartTimeRankingFullYear sweeps every feasible start hour of a
// year at 24 h duration — the workload the prefix-sum/sliding-window
// kernels exist for. The seed implementation evaluated this in
// O(candidates × duration); this must stay ≥10x faster (see
// BENCH_PR2.json's before/after record).
func BenchmarkStartTimeRankingFullYear(b *testing.B) {
	cfg, err := core.ConfigFor("Frontier")
	if err != nil {
		b.Fatal(err)
	}
	a, err := cfg.Assess()
	if err != nil {
		b.Fatal(err)
	}
	const dur = 24
	candidates := make([]int, a.Hourly.Len()-dur+1)
	for i := range candidates {
		candidates[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.RankStartTimes(0.5, dur, candidates, a.Hourly); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension experiments (Sec. 6 outlook) ---

func BenchmarkExtWater500(b *testing.B)    { benchExperiment(b, "water500") }
func BenchmarkExtWaterCap(b *testing.B)    { benchExperiment(b, "watercap") }
func BenchmarkExtGeoShift(b *testing.B)    { benchExperiment(b, "geoshift") }
func BenchmarkExtSensitivity(b *testing.B) { benchExperiment(b, "sensitivity") }
func BenchmarkExtGreenSched(b *testing.B)  { benchExperiment(b, "greensched") }

func BenchmarkExtUpgrade(b *testing.B) { benchExperiment(b, "upgrade") }
