package thirstyflops

// Warm-restart and crash-recovery tests for the Engine's persistence
// tier: a fresh Engine opened on a populated state directory must serve
// previously assessed configurations from disk — bit-identical, without
// recomputing — and a log torn at an arbitrary byte offset must recover
// to a valid prefix instead of panicking or serving garbage.

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// BenchmarkEngineWarmStartDisk prices a restarted daemon's first answer
// for a known configuration: open the persistence log, miss the fresh
// in-memory memo, and decode the year from disk. Compare against
// BenchmarkEngineAssessColdIsolated (bench_test-gated since PR 2), the
// full recompute the disk hit replaces — both are recorded side by side
// in BENCH_PR5.json.
func BenchmarkEngineWarmStartDisk(b *testing.B) {
	dir := b.TempDir()
	seedEng := NewEngine(WithPersistence(dir))
	if err := seedEng.PersistenceError(); err != nil {
		b.Fatal(err)
	}
	req := AssessRequest{System: "Frontier"}
	if _, err := seedEng.Assess(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	if err := seedEng.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(WithPersistence(dir))
		if err := eng.PersistenceError(); err != nil {
			b.Fatal(err)
		}
		res, err := eng.Assess(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if res.Cached {
			b.Fatal("fresh engine reported an in-memory hit")
		}
		if st := eng.CacheStats(); st.Disk.Hits != 1 {
			b.Fatalf("disk stats = %+v, want a disk hit", st.Disk)
		}
		if err := eng.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// persistDir returns a fresh state directory for one test.
func persistDir(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "state")
}

// newPersistentEngine builds an Engine on dir, failing the test if the
// disk tier did not open.
func newPersistentEngine(t *testing.T, dir string, opts ...Option) *Engine {
	t.Helper()
	eng := NewEngine(append([]Option{WithPersistence(dir)}, opts...)...)
	if err := eng.PersistenceError(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// assessJSON runs one request and returns the result plus its canonical
// JSON encoding (the bit-identity comparison medium: every float lands
// in the JSON bit-exactly or not at all).
func assessJSON(t *testing.T, eng *Engine, req AssessRequest) (*AssessResult, []byte) {
	t.Helper()
	res, err := eng.Assess(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return res, raw
}

func TestEnginePersistenceWarmStart(t *testing.T) {
	dir := persistDir(t)
	reqs := []AssessRequest{
		{System: "Frontier", IncludeSeries: true},
		{System: "Marconi", Scenarios: true},
		{System: "Fugaku", Withdrawal: true},
	}

	eng1 := newPersistentEngine(t, dir)
	var before [][]byte
	for _, r := range reqs {
		_, raw := assessJSON(t, eng1, r)
		before = append(before, raw)
	}
	st := eng1.CacheStats()
	if st.Disk == nil {
		t.Fatal("no disk stats with persistence enabled")
	}
	if st.Disk.Hits != 0 || st.Disk.Misses == 0 {
		t.Fatalf("cold engine disk stats = %+v", st.Disk)
	}
	if err := eng1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh Engine on the same directory must answer from disk: every
	// byte of every result identical, zero substrate activity (substrate
	// lookups only happen inside a real recompute).
	eng2 := newPersistentEngine(t, dir)
	defer eng2.Close()
	for i, r := range reqs {
		res, raw := assessJSON(t, eng2, r)
		if string(raw) != string(before[i]) {
			t.Errorf("request %d not bit-identical after restart:\n before %s\n after  %s", i, before[i], raw)
		}
		if res.Cached {
			// The in-memory memo is fresh; the disk tier fills it.
			t.Errorf("request %d claims an in-memory hit on a fresh engine", i)
		}
	}
	st = eng2.CacheStats()
	if st.Disk.Hits != uint64(len(reqs)) || st.Disk.Misses != 0 {
		t.Errorf("warm engine disk stats = %+v, want %d hits / 0 misses", st.Disk, len(reqs))
	}
	if sub := st.Substrate; sub.PlannedHits+sub.PlannedMisses+sub.UnplannedHits+sub.UnplannedMisses != 0 {
		t.Errorf("warm restart recomputed: substrate counters = %+v", sub)
	}
	if st.Disk.Recovered != len(reqs) {
		t.Errorf("recovered %d entries, want %d", st.Disk.Recovered, len(reqs))
	}
}

// TestEnginePersistenceDisabledCacheStillServesDisk covers the
// cache-disabled configuration (WithCache(0)): every request re-enters
// the compute path, so the disk tier must answer repeats.
func TestEnginePersistenceDisabledCacheStillServesDisk(t *testing.T) {
	dir := persistDir(t)
	eng1 := newPersistentEngine(t, dir, WithCache(0))
	_, first := assessJSON(t, eng1, AssessRequest{System: "Frontier"})
	if err := eng1.Close(); err != nil {
		t.Fatal(err)
	}

	eng2 := newPersistentEngine(t, dir, WithCache(0))
	defer eng2.Close()
	_, again := assessJSON(t, eng2, AssessRequest{System: "Frontier"})
	if string(first) != string(again) {
		t.Errorf("cache-disabled warm restart diverged:\n before %s\n after  %s", first, again)
	}
	if st := eng2.CacheStats(); st.Disk.Hits != 1 {
		t.Errorf("disk stats = %+v, want 1 hit", st.Disk)
	}
}

// TestEnginePersistenceCrashRecovery tears the log at randomized byte
// offsets and asserts warm-start bit-identity with the pre-crash cache:
// whatever survives recovery serves from disk, everything else
// recomputes, and either way every result is bit-identical to the
// original (the simulation is deterministic, so identity holds exactly
// when recovery never surfaces a partial record).
func TestEnginePersistenceCrashRecovery(t *testing.T) {
	dir := persistDir(t)
	reqs := []AssessRequest{
		{System: "Frontier"},
		{System: "Marconi"},
		{System: "Fugaku", IncludeSeries: true},
	}
	eng := newPersistentEngine(t, dir)
	var before [][]byte
	for _, r := range reqs {
		_, raw := assessJSON(t, eng, r)
		before = append(before, raw)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "assess.log")
	intact, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		cut := rng.Intn(len(intact) + 1)
		crashDir := filepath.Join(t.TempDir(), "state")
		if err := os.MkdirAll(crashDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, "assess.log"), intact[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		warm := newPersistentEngine(t, crashDir)
		for i, r := range reqs {
			_, raw := assessJSON(t, warm, r)
			if string(raw) != string(before[i]) {
				t.Errorf("cut=%d request %d diverged from pre-crash result", cut, i)
			}
		}
		st := warm.CacheStats()
		if st.Disk.Hits+st.Disk.Misses != uint64(len(reqs)) {
			t.Errorf("cut=%d disk outcomes = %+v, want %d total", cut, st.Disk, len(reqs))
		}
		if int(st.Disk.Hits) != st.Disk.Recovered {
			t.Errorf("cut=%d served %d from disk but recovered %d", cut, st.Disk.Hits, st.Disk.Recovered)
		}
		if err := warm.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEnginePersistenceSchemaInvalidation proves a log written under a
// foreign schema (or arbitrary bytes in place of a log) is discarded,
// not misread.
func TestEnginePersistenceSchemaInvalidation(t *testing.T) {
	dir := persistDir(t)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "assess.log"), []byte("not a store file, definitely long enough"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := newPersistentEngine(t, dir)
	defer eng.Close()
	if st := eng.CacheStats(); st.Disk.Recovered != 0 {
		t.Errorf("recovered %d entries from garbage", st.Disk.Recovered)
	}
	if _, err := eng.Assess(context.Background(), AssessRequest{System: "Frontier"}); err != nil {
		t.Fatal(err)
	}
}
