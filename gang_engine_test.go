package thirstyflops

// Gang-scheduler integration tests: concurrent AssessBatch calls merged
// through the engine's fleet-wide scheduler must generate each shared
// substrate year once fleet-wide (not once per batch), return results
// bit-identical to serial per-batch execution, and keep one batch's
// cancellation from bleeding into another. BenchmarkConcurrentBatches*
// record the wall-clock side in BENCH_PR10.json, gated by `make
// bench-gang`.

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"thirstyflops/internal/substrate"
)

// gangWindowForTest is generous enough that every concurrently launched
// batch lands inside the first round's merge window even on a loaded CI
// machine.
const gangWindowForTest = 250 * time.Millisecond

// TestGangFleetWideOptimum extends the planner's never-regenerates
// property across batches: N concurrent batches sweeping the same
// systems generate each distinct substrate year exactly once fleet-wide
// — the same count one batch alone needs — and the sharing shows up in
// the cross-job substrate split.
func TestGangFleetWideOptimum(t *testing.T) {
	restoreSubstrate(t)
	seeds := []uint64{1, 2}
	years := []int{2030, 2031, 2032}
	reqs := interleavedSweep(sweepSystems, seeds, years)

	// Same formula as the single-batch planner test: grid/WUE/wet-bulb
	// are (site, seed)-keyed, utilization seeds-keyed.
	groups := len(sweepSystems) * len(seeds)
	wantGenerations := uint64(3*groups + len(seeds))

	const batches = 4
	eng := NewEngine(WithCache(0), WithWorkers(1), WithGangWindow(gangWindowForTest))
	results := make([][]*AssessResult, batches)
	got := generationsDuring(t, 2, func() {
		var wg sync.WaitGroup
		for b := 0; b < batches; b++ {
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				res, err := eng.AssessMany(context.Background(), reqs)
				if err != nil {
					t.Errorf("batch %d: %v", b, err)
				}
				results[b] = res
			}(b)
		}
		wg.Wait()
	})
	if got != wantGenerations {
		t.Fatalf("%d concurrent batches generated %d years, want exactly %d (fleet-wide optimum, not %d per-batch)",
			batches, got, wantGenerations, batches*int(wantGenerations))
	}

	// Bit-identical to serial per-batch execution (gang window 0).
	serialEng := NewEngine(WithCache(0), WithWorkers(1))
	want, err := serialEng.AssessMany(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for b := range results {
		if !reflect.DeepEqual(results[b], want) {
			t.Fatalf("batch %d results differ from serial per-batch execution", b)
		}
	}

	// The sharing is attributed: cross-job units made substrate lookups,
	// some of them hits on years another batch generated, and the
	// cross-job pair is a subset of the planned pair.
	stats := eng.CacheStats().Substrate
	if stats.CrossJobHits == 0 {
		t.Errorf("no cross-job substrate hits recorded: %+v", stats)
	}
	if stats.PlannedMisses != wantGenerations {
		t.Errorf("planned misses = %d, want %d", stats.PlannedMisses, wantGenerations)
	}
	if stats.CrossJobHits > stats.PlannedHits || stats.CrossJobMisses > stats.PlannedMisses {
		t.Errorf("cross-job pair exceeds planned pair: %+v", stats)
	}
	gs := eng.CacheStats().Gang
	if gs == nil {
		t.Fatal("CacheStats.Gang is nil with a gang window set")
	}
	if gs.MergedBatches != batches || gs.CrossJobUnits == 0 {
		t.Errorf("gang stats = %+v; want %d merged batches and cross-job units", gs, batches)
	}
}

// TestGangWindowZeroRestoresPerBatch: window 0 (the default) means no
// scheduler at all — and so does disabling the planner, since the merged
// schedule is the planner's.
func TestGangWindowZeroRestoresPerBatch(t *testing.T) {
	if NewEngine().CacheStats().Gang != nil {
		t.Error("default engine has a gang scheduler")
	}
	if NewEngine(WithGangWindow(0)).CacheStats().Gang != nil {
		t.Error("window 0 still built a gang scheduler")
	}
	if NewEngine(WithGangWindow(time.Millisecond), WithPlanner(false)).CacheStats().Gang != nil {
		t.Error("gang scheduler built with the planner disabled")
	}
	eng := NewEngine(WithGangWindow(time.Millisecond))
	if eng.CacheStats().Gang == nil {
		t.Fatal("no gang scheduler with a positive window")
	}
	// And the scheduled path still answers correctly.
	res, err := eng.AssessMany(context.Background(), interleavedSweep(sweepSystems[:2], []uint64{1}, []int{2030}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0] == nil || res[1] == nil {
		t.Fatalf("gang-scheduled batch lost results: %v", res)
	}
}

// TestGangSoakNoCancellationBleed is the race-enabled scheduler soak:
// overlapping and disjoint batches stream through the merge window with
// staggered cancellations; surviving batches must return results
// bit-identical to serial per-batch execution with no context errors,
// and canceled batches must fail only themselves.
func TestGangSoakNoCancellationBleed(t *testing.T) {
	restoreSubstrate(t)
	eng := NewEngine(WithCache(0), WithWorkers(4), WithGangWindow(2*time.Millisecond))
	serialEng := NewEngine(WithCache(0), WithWorkers(1))

	// Per-shape serial baselines, computed once.
	shapes := [][]AssessRequest{
		interleavedSweep(sweepSystems, []uint64{1}, []int{2030, 2031}),          // overlapping pool
		interleavedSweep(sweepSystems[:2], []uint64{2}, []int{2032}),            // overlapping pool
		interleavedSweep([]string{"Fugaku"}, []uint64{7}, []int{2040, 2041}),    // disjoint
		interleavedSweep([]string{"Polaris"}, []uint64{9}, []int{2050, 2051}),   // disjoint
		interleavedSweep(sweepSystems, []uint64{1, 2}, []int{2030, 2031, 2032}), // wide overlap
	}
	baselines := make([][]*AssessResult, len(shapes))
	for i, reqs := range shapes {
		want, err := serialEng.AssessMany(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		baselines[i] = want
	}

	const submitters = 6
	const iters = 8
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < iters; iter++ {
				shape := rng.Intn(len(shapes))
				reqs := shapes[shape]
				ctx, cancel := context.WithCancel(context.Background())
				willCancel := rng.Intn(3) == 0
				if willCancel {
					time.AfterFunc(time.Duration(rng.Intn(4))*time.Millisecond, cancel)
				}
				res, err := eng.AssessMany(ctx, reqs)
				cancel()
				if willCancel {
					// Canceled or completed-before-the-cancel are both
					// fine; a foreign error is not.
					if err != nil && !errors.Is(err, context.Canceled) {
						t.Errorf("submitter %d iter %d: canceled batch failed with a non-cancel error: %v", g, iter, err)
					}
					continue
				}
				if err != nil {
					t.Errorf("submitter %d iter %d: un-canceled batch failed: %v (cancellation bleed?)", g, iter, err)
					continue
				}
				if !reflect.DeepEqual(res, baselines[shape]) {
					t.Errorf("submitter %d iter %d: results differ from serial per-batch execution", g, iter)
				}
			}
		}(g)
	}
	wg.Wait()

	// Accounting stayed coherent across the soak.
	gs := eng.CacheStats().Gang
	if gs.Units == 0 || gs.Rounds == 0 {
		t.Fatalf("soak ran no gang rounds: %+v", gs)
	}
}

// TestAssessBatchCancelCollapsesErrors pins the cancellation-error
// collapse: a 10k-unit batch canceled before execution reports one
// counted summary, not ten thousand joined "context canceled" lines —
// while still matching errors.Is(err, context.Canceled) and keeping the
// nil-result-implies-reported-error pairing.
func TestAssessBatchCancelCollapsesErrors(t *testing.T) {
	const units = 10_000
	reqs := make([]AssessRequest, units)
	for i := range reqs {
		year := 2030 + i // distinct configs: nothing to memo-share
		reqs[i] = AssessRequest{System: "Frontier", Year: &year}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, tc := range []struct {
		name string
		eng  *Engine
	}{
		{"planner", NewEngine()},
		{"unplanned", NewEngine(WithPlanner(false))},
		{"gang", NewEngine(WithGangWindow(time.Millisecond))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			results, err := tc.eng.AssessBatch(ctx, reqs, nil)
			if err == nil {
				t.Fatal("canceled batch returned nil error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("errors.Is(err, context.Canceled) = false: %v", err)
			}
			msg := err.Error()
			if len(msg) > 500 {
				t.Fatalf("error string is %d bytes for a %d-unit canceled batch (O(batch) join not collapsed): %.200s...",
					len(msg), units, msg)
			}
			if !strings.Contains(msg, "units canceled before completion") {
				t.Fatalf("no counted cancellation summary in: %s", msg)
			}
			for i, r := range results {
				if r != nil {
					t.Fatalf("unit %d has a result from a pre-canceled context", i)
				}
			}
		})
	}
}

// TestJoinUnitErrorsKeepsRealFailures: the collapse is scoped to context
// errors — genuine per-unit failures stay individually reported, and a
// single cancellation is passed through unsummarized.
func TestJoinUnitErrorsKeepsRealFailures(t *testing.T) {
	boom := errors.New("boom")
	err := joinUnitErrors([]error{nil, boom, context.Canceled, nil, context.Canceled, errors.New("bang")})
	if err == nil {
		t.Fatal("nil join")
	}
	msg := err.Error()
	for _, want := range []string{"boom", "bang", "2 units canceled before completion"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error %q is missing %q", msg, want)
		}
	}
	if !errors.Is(err, context.Canceled) || !errors.Is(err, boom) {
		t.Error("joined error lost errors.Is identity")
	}

	if err := joinUnitErrors([]error{nil, nil}); err != nil {
		t.Errorf("error-free batch joined to %v", err)
	}
	one := joinUnitErrors([]error{context.Canceled})
	if one == nil || strings.Contains(one.Error(), "units canceled") {
		t.Errorf("single cancellation should pass through unsummarized, got %v", one)
	}
}

// benchConcurrentBatches runs N concurrent copies of the shuffled
// BENCH_PR4 sweep through one engine and reports substrate generations
// per op (one op = all N batches). With a merge window the batches
// coalesce into one fleet-wide schedule and each shared year generates
// once; with window 0 each batch plans alone and the concurrent sweeps
// churn the squeezed substrate cache against each other.
func benchConcurrentBatches(b *testing.B, window time.Duration) {
	b.ReportAllocs()
	defer substrate.SetCapacity(substrate.DefaultCapacity)
	substrate.SetCapacity(2)
	eng := NewEngine(WithCache(0), WithWorkers(4), WithGangWindow(window))
	reqs := benchSweep()
	ctx := context.Background()
	const batches = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < batches; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := eng.AssessMany(ctx, reqs); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	stats := eng.CacheStats().Substrate
	misses := stats.PlannedMisses + stats.UnplannedMisses
	b.ReportMetric(float64(misses)/float64(b.N), "generations/op")
}

// BenchmarkConcurrentBatchesGang: four overlapping batches merged by the
// fleet-wide gang scheduler. Gated against BENCH_PR10.json.
func BenchmarkConcurrentBatchesGang(b *testing.B) {
	benchConcurrentBatches(b, time.Millisecond)
}

// BenchmarkConcurrentBatchesPerBatch: the same four batches planned
// per-batch (gang window 0) — the baseline the BENCH_PR10 record keeps
// for comparison.
func BenchmarkConcurrentBatchesPerBatch(b *testing.B) {
	benchConcurrentBatches(b, 0)
}
