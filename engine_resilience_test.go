package thirstyflops

// Degraded-mode serving tests: the disk tier trips its circuit breaker
// under injected faults, the Engine keeps answering (memory-only,
// drop-and-count, bit-identical results), the half-open probe restores
// disk serving when the faults clear, and a warm restart after recovery
// is bit-identical to the healthy baseline.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"thirstyflops/internal/breaker"
	"thirstyflops/internal/faultinject"
)

// resilientOptions wires a short-fused breaker suitable for tests: one
// failure trips, a short cooldown admits probes quickly.
func resilientOptions(in *faultinject.Injector) []Option {
	return []Option{
		WithStoreFS(in),
		WithDiskBreaker(breaker.Options{Threshold: 1, Cooldown: 20 * time.Millisecond}),
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestEngineDegradedModeServing(t *testing.T) {
	dir := persistDir(t)
	in := faultinject.New(faultinject.OS{}, 1)
	eng := newPersistentEngine(t, dir, resilientOptions(in)...)

	seed := func(s uint64) *uint64 { return &s }
	baselineReq := AssessRequest{System: "Frontier", Seed: seed(11)}
	_, baselineJSON := assessJSON(t, eng, baselineReq)
	if eng.DiskDegraded() {
		t.Fatal("healthy engine reports degraded")
	}
	// Let the asynchronous write-through land before the disk dies: a
	// record still queued when faults hit is legitimately dropped
	// (drop-and-count), and this test wants the baseline durable.
	waitFor(t, "baseline record to flush", func() bool {
		d := eng.CacheStats().Disk
		return d.Appends >= 1 && d.Pending == 0
	})

	// The disk dies: every write and every rehabilitation truncate fails.
	// The next write-through trips the breaker via the store's async
	// write-error callback.
	in.Add(faultinject.Rule{Op: faultinject.OpWrite, Prob: 1})
	in.Add(faultinject.Rule{Op: faultinject.OpTruncate, Prob: 1})
	trippingReq := AssessRequest{System: "Fugaku", Seed: seed(12)}
	trippingRes, trippingJSON := assessJSON(t, eng, trippingReq)
	if trippingRes.Cached {
		t.Fatal("first Fugaku assess reported cached")
	}
	waitFor(t, "breaker to trip", eng.DiskDegraded)

	// Degraded serving: the memoized result still answers (from memory),
	// and a brand-new configuration still assesses correctly with the
	// disk tier bypassed. Bit-identity is checked against a memory-only
	// engine computing the same request from scratch.
	memoRes, memoJSON := assessJSON(t, eng, trippingReq)
	if !memoRes.Cached {
		t.Fatal("degraded engine missed its own memo")
	}
	memoRes.Cached = false
	renorm, _ := json.Marshal(memoRes)
	if !bytes.Equal(renorm, trippingJSON) {
		t.Fatalf("degraded memo result diverged:\n%s\n%s", renorm, trippingJSON)
	}
	_ = memoJSON

	freshReq := AssessRequest{System: "Polaris", Seed: seed(13)}
	_, degradedJSON := assessJSON(t, eng, freshReq)
	memOnly := NewEngine()
	_, wantJSON := assessJSON(t, memOnly, freshReq)
	if !bytes.Equal(degradedJSON, wantJSON) {
		t.Fatalf("degraded result not bit-identical to healthy compute:\n%s\n%s", degradedJSON, wantJSON)
	}

	st := eng.CacheStats()
	if st.Disk == nil || !st.Disk.Degraded {
		t.Fatalf("CacheStats.Disk does not report degradation: %+v", st.Disk)
	}
	if st.Disk.Breaker == nil || st.Disk.Breaker.State == "closed" {
		t.Fatalf("breaker snapshot missing or closed while degraded: %+v", st.Disk.Breaker)
	}
	if st.Disk.WriteErrors == 0 {
		t.Fatal("no write errors counted despite injected faults")
	}

	// The disk comes back: the next disk access past the cooldown is a
	// half-open probe (a store.Sync that rehabilitates the wedged write
	// path), which closes the breaker and restores disk serving.
	in.Clear()
	probe := AssessRequest{System: "Marconi", Seed: seed(14)}
	probeSeed := uint64(14)
	waitFor(t, "breaker to close after faults cleared", func() bool {
		probeSeed++
		probe.Seed = &probeSeed // fresh fingerprint: forces a disk access
		if _, err := eng.Assess(context.Background(), probe); err != nil {
			t.Fatal(err)
		}
		return !eng.DiskDegraded()
	})
	st = eng.CacheStats()
	if st.Disk.Skips == 0 {
		t.Fatal("degraded interval recorded no skipped disk accesses")
	}
	if st.Disk.Breaker.Probes == 0 {
		t.Fatal("recovery happened without a half-open probe")
	}

	// Post-recovery write-through works again: a new assessment lands on
	// disk and a restarted engine serves the baseline from disk,
	// bit-identical, with disk hits observable.
	landReq := AssessRequest{System: "Frontier", Seed: seed(99)}
	_, landJSON := assessJSON(t, eng, landReq)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	warm := newPersistentEngine(t, dir, resilientOptions(in)...)
	defer warm.Close()
	warmRes, warmJSON := assessJSON(t, warm, baselineReq)
	if warmRes.Cached {
		t.Fatal("warm restart reported an in-memory hit for its first request")
	}
	if !bytes.Equal(warmJSON, baselineJSON) {
		t.Fatalf("warm-restart result diverged from healthy baseline:\n%s\n%s", warmJSON, baselineJSON)
	}
	_, warmLandJSON := assessJSON(t, warm, landReq)
	if !bytes.Equal(warmLandJSON, landJSON) {
		t.Fatal("post-recovery write-through did not survive the restart bit-identically")
	}
	if ws := warm.CacheStats(); ws.Disk.Hits < 2 {
		t.Fatalf("warm restart served %d disk hits, want >= 2", ws.Disk.Hits)
	}
}

func TestEngineAssessHookInjectsErrors(t *testing.T) {
	in := faultinject.New(faultinject.OS{}, 1,
		faultinject.Rule{Op: faultinject.OpAssess, Nth: 1, Path: "Frontier"})
	eng := NewEngine(WithAssessHook(func(system string) error {
		return in.Fire(faultinject.OpAssess, system)
	}))
	if _, err := eng.Assess(context.Background(), AssessRequest{System: "Frontier"}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Assess err = %v, want injected", err)
	}
	// The rule fired once; the retry computes and memoizes normally.
	res, err := eng.Assess(context.Background(), AssessRequest{System: "Frontier"})
	if err != nil || res == nil {
		t.Fatalf("post-fault Assess: %v", err)
	}
	// Other systems never matched the path filter.
	if _, err := eng.Assess(context.Background(), AssessRequest{System: "Fugaku"}); err != nil {
		t.Fatalf("unmatched system failed: %v", err)
	}
}

func TestAssessBatchPanicContainment(t *testing.T) {
	eng := NewEngine(WithAssessHook(func(system string) error {
		if system == "Fugaku" {
			panic("poisoned config")
		}
		return nil
	}))
	reqs := []AssessRequest{
		{System: "Frontier"},
		{System: "Fugaku"},
		{System: "Polaris"},
	}
	results, err := eng.AssessMany(context.Background(), reqs)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("joined error = %v, want a contained panic", err)
	}
	if results[0] == nil || results[2] == nil {
		t.Fatal("panicking unit took healthy units down with it")
	}
	if results[1] != nil {
		t.Fatal("panicking unit produced a result")
	}

	// The unplanned path contains panics too.
	eng2 := NewEngine(WithPlanner(false), WithAssessHook(func(system string) error {
		if system == "Fugaku" {
			panic("poisoned config")
		}
		return nil
	}))
	results, err = eng2.AssessMany(context.Background(), reqs)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("unplanned joined error = %v, want a contained panic", err)
	}
	if results[0] == nil || results[2] == nil || results[1] != nil {
		t.Fatal("unplanned path mishandled the poisoned unit")
	}
}
