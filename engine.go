package thirstyflops

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thirstyflops/internal/breaker"
	"thirstyflops/internal/cache"
	"thirstyflops/internal/configio"
	"thirstyflops/internal/core"
	"thirstyflops/internal/embodied"
	"thirstyflops/internal/faultinject"
	"thirstyflops/internal/fingerprint"
	"thirstyflops/internal/gang"
	"thirstyflops/internal/plan"
	"thirstyflops/internal/store"
	"thirstyflops/internal/substrate"
	"thirstyflops/internal/telemetry"
)

// Engine is a reusable, concurrency-safe assessment session. The yearly
// simulation behind an assessment is a pure function of the Config (which
// embeds Seed and Year), so the Engine memoizes it: repeated requests for
// the same configuration — across goroutines, sweeps, rankings, and HTTP
// handlers — simulate once and share the result. An Engine is cheap
// enough to create per process and is safe for use from multiple
// goroutines; the zero value is not usable, construct one with NewEngine.
//
// The memo is split into power-of-two shards selected by a fingerprint
// prefix. Each shard carries its own mutex and an O(1) doubly-linked LRU,
// so concurrent requests for different configurations do not serialize on
// a single cache lock and a hit never pays a linear recency scan.
type Engine struct {
	workers    int
	maxEntries int
	shardHint  int
	planner    bool
	shards     []*cache.Cache[fingerprint.Key, core.Annual]
	streams    *telemetry.Registry

	// Persistence tier under the in-memory shards (WithPersistence):
	// memoized simulated years spill to an append-only disk log keyed by
	// the same fingerprint, so a restarted process answers previously
	// assessed configurations without recomputing. store is nil when
	// persistence is off; storeErr records why an Open failed (the
	// Engine then runs memory-only).
	persistDir string
	storeFS    faultinject.FS
	store      *store.Store
	storeErr   error

	// disk is the error-budget circuit breaker in front of the
	// persistence tier (non-nil exactly when store is): consecutive
	// append/read failures trip it open, the Engine serves memory-only
	// (skips counted), and a half-open probe — a store.Sync, which
	// exercises the whole write path including rehabilitation — closes
	// it when the disk recovers.
	disk        *breaker.Breaker
	breakerOpts breaker.Options

	// assessHook, when set, runs before every simulation — the
	// fault-injection seam on the assess path (WithAssessHook). A
	// returned error fails the assessment; the hook may also sleep
	// (latency injection) or panic (containment testing).
	assessHook func(system string) error

	diskHits      atomic.Uint64
	diskMisses    atomic.Uint64
	diskDecodeErr atomic.Uint64
	diskSkips     atomic.Uint64

	// Substrate-layer lookups made on this Engine's behalf, split by
	// whether the triggering assessment was scheduled by the sweep
	// planner. The split is how planner effectiveness is observed in
	// production (CacheStats.Substrate). The cross-job pair is a subset
	// of the planned pair: lookups whose unit was co-scheduled by the
	// gang scheduler into a substrate group spanning more than one batch.
	subPlannedHits     atomic.Uint64
	subPlannedMisses   atomic.Uint64
	subUnplannedHits   atomic.Uint64
	subUnplannedMisses atomic.Uint64
	subCrossJobHits    atomic.Uint64
	subCrossJobMisses  atomic.Uint64

	// gangWindow/gangSched are the fleet-wide admission layer
	// (WithGangWindow): when the window is positive and the planner is
	// on, AssessBatch calls enqueue into one shared scheduler that merges
	// batches arriving within a window into a single substrate-affine
	// schedule. gangSched is nil when gang scheduling is off.
	gangWindow time.Duration
	gangSched  *gang.Scheduler
}

// subTag tags a substrate lookup with how its assessment was scheduled,
// for the planner-effectiveness split in CacheStats.Substrate.
type subTag uint8

const (
	// subUnplanned: single Assess calls, or planning disabled.
	subUnplanned subTag = iota
	// subPlanned: scheduled by the sweep planner within one batch.
	subPlanned
	// subCrossJob: planned, and the unit's substrate group in the gang
	// scheduler's merged round held units from more than one batch —
	// the lookup also counts toward the planned pair.
	subCrossJob
)

// Option configures an Engine.
type Option func(*Engine)

// WithCache bounds the total number of memoized assessments (default 64).
// Least-recently-touched entries are evicted first. The bound is
// apportioned across the cache shards, so the effective capacity is n
// rounded down to a multiple of the shard count. n <= 0 disables caching.
func WithCache(n int) Option {
	return func(e *Engine) { e.maxEntries = n }
}

// WithWorkers sets the AssessMany/Sweep fan-out width (default
// GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.workers = n
		}
	}
}

// WithLiveStream attaches a telemetry stream: Engine.Ingest feeds it and
// requests with Source "live" answer against a simulated year spliced
// with the stream's observed demand. Live results are cached under a key
// that chains the configuration fingerprint with the stream epoch, so a
// cached assessment can never survive past the samples it was computed
// from.
//
// The option is repeatable: each stream registers under its system label
// in the Engine's stream registry, and samples plus source="live"
// requests route to their system's stream (a stream with an empty label
// is the wildcard fallback). Registering a second stream for the same
// system replaces the first.
func WithLiveStream(s *telemetry.Stream) Option {
	return func(e *Engine) {
		if e.streams == nil {
			e.streams = telemetry.NewRegistry()
		}
		e.streams.Register(s)
	}
}

// WithLiveStreams attaches a pre-built stream registry wholesale —
// the daemon shares one registry between the Engine and the UDP
// telemetry plane. It replaces any streams registered so far.
func WithLiveStreams(r *telemetry.Registry) Option {
	return func(e *Engine) { e.streams = r }
}

// WithPlanner toggles substrate-aware batch planning (default on). When
// enabled, AssessMany/AssessBatch/Sweep fingerprint each request's
// substrate identity and schedule the batch so requests sharing a
// substrate run consecutively on one worker (internal/plan): at most
// `workers` distinct substrates are live at any moment, so a bounded
// substrate cache generates each shared year once per sweep regardless
// of arrival order. Disabling it restores arrival-order fan-out — the
// baseline the planner benchmarks compare against.
func WithPlanner(enabled bool) Option {
	return func(e *Engine) { e.planner = enabled }
}

// WithGangWindow enables fleet-wide gang scheduling: AssessBatch calls
// arriving within d of each other merge into one substrate-affine
// schedule (internal/gang), so concurrent batches sweeping the same
// sites generate each shared substrate year once fleet-wide instead of
// once per batch. Per-batch context cancellation is still honored —
// canceling one batch never cancels co-scheduled units of another.
// d <= 0 (the default) keeps today's per-batch planning; the option
// requires the planner (WithPlanner(false) disables it too, since the
// merged schedule is built by the same planner).
func WithGangWindow(d time.Duration) Option {
	return func(e *Engine) { e.gangWindow = d }
}

// WithPersistence attaches the disk tier: memoized assessments are
// written through to an append-only record log under dir (created if
// absent) and consulted on cache misses, so a fresh Engine on the same
// directory — typically a restarted daemon — serves previously assessed
// configurations from disk instead of recomputing them. Appends are
// asynchronous behind a bounded queue and never block the assess path;
// under sustained pressure a write may be dropped (it is a cache, the
// entry is simply recomputed next time). Check PersistenceError after
// NewEngine and Close the Engine to flush the log on shutdown.
func WithPersistence(dir string) Option {
	return func(e *Engine) { e.persistDir = dir }
}

// WithStoreFS sets the filesystem the persistence tier runs on (default
// the real one). Tests inject a faultinject.Injector to replay disk
// failures deterministically through the whole engine stack.
func WithStoreFS(fs faultinject.FS) Option {
	return func(e *Engine) { e.storeFS = fs }
}

// WithDiskBreaker tunes the persistence tier's circuit breaker — the
// failure threshold, the open-state cooldown, and (in tests) the clock.
// Without it the breaker runs with the breaker package defaults.
func WithDiskBreaker(opts breaker.Options) Option {
	return func(e *Engine) { e.breakerOpts = opts }
}

// WithAssessHook installs a hook that runs before every simulation —
// the fault-injection seam on the assess path. A returned error fails
// that assessment (per-unit: the rest of a batch proceeds); the hook
// may also sleep to inject latency, or panic to exercise containment.
// Wire a faultinject.Injector with
//
//	WithAssessHook(func(system string) error {
//	    return inj.Fire(faultinject.OpAssess, system)
//	})
func WithAssessHook(h func(system string) error) Option {
	return func(e *Engine) { e.assessHook = h }
}

// assessStoreSchema versions the on-disk assessment records. Bump it
// whenever the configuration fingerprint encoding (internal/fingerprint
// writers or core.Config.Fingerprint field coverage) or the gob shape of
// core.Annual changes: a store written under any other schema is
// discarded at open rather than misread.
const assessStoreSchema = 1

// assessLogName is the record log's filename inside the persistence dir.
const assessLogName = "assess.log"

// defaultShards is the shard-count ceiling: enough to relieve contention
// at typical serving parallelism without fragmenting small caches.
const defaultShards = 8

// WithShards overrides the cache shard count (default min(8, capacity/4),
// at least 1). The value is clamped to a power of two no larger than the
// cache capacity, so the capacity bound is always honored.
func WithShards(n int) Option {
	return func(e *Engine) { e.shardHint = n }
}

// shardCount resolves the effective power-of-two shard count.
func (e *Engine) shardCount() int {
	limit := e.maxEntries
	hint := e.shardHint
	if hint <= 0 {
		// Keep at least 4 entries per shard so sharding never costs
		// meaningful capacity at small cache sizes.
		hint = min(defaultShards, limit/4)
	}
	n := 1
	for n*2 <= min(hint, limit) {
		n *= 2
	}
	return n
}

// NewEngine builds an assessment session.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		workers:    runtime.GOMAXPROCS(0),
		maxEntries: 64,
		planner:    true,
	}
	for _, o := range opts {
		o(e)
	}
	if e.maxEntries > 0 {
		shards := e.shardCount()
		perShard := e.maxEntries / shards
		e.shards = make([]*cache.Cache[fingerprint.Key, core.Annual], shards)
		for i := range e.shards {
			e.shards[i] = cache.New[fingerprint.Key, core.Annual](perShard)
		}
	}
	if e.persistDir != "" {
		e.disk = breaker.New(e.breakerOpts)
		if err := os.MkdirAll(e.persistDir, 0o755); err != nil {
			e.storeErr = fmt.Errorf("thirstyflops: persistence dir: %w", err)
		} else if st, err := store.Open(filepath.Join(e.persistDir, assessLogName), store.Options{
			Schema: assessStoreSchema,
			FS:     e.storeFS,
			// Asynchronous write failures (batch append, flush, automatic
			// compaction) spend the breaker's error budget; the store has
			// already counted and contained them.
			OnWriteError: func(err error) { e.disk.Record(err) },
		}); err != nil {
			e.storeErr = fmt.Errorf("thirstyflops: open persistence log: %w", err)
		} else {
			e.store = st
		}
		if e.store == nil {
			e.disk = nil
		}
	}
	if e.gangWindow > 0 && e.planner {
		e.gangSched = gang.New(e.gangWindow, e.workers)
	}
	return e
}

// PersistenceError reports why WithPersistence could not open its disk
// log (nil when persistence is healthy or was never requested). An
// Engine with a persistence error still works memory-only.
func (e *Engine) PersistenceError() error { return e.storeErr }

// Close flushes and releases the persistence tier. It is a no-op for
// memory-only Engines. The Engine must not be used after Close.
func (e *Engine) Close() error {
	if e.store == nil {
		return nil
	}
	return e.store.Close()
}

var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the shared package-level Engine backing the
// deprecated one-shot top-level helpers.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() { defaultEngine = NewEngine() })
	return defaultEngine
}

// CacheStats reports the Engine's memoization behavior: the sharded
// assessment memo plus the substrate layer beneath it.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`

	// Substrate reports the generator-year layer: process-wide totals
	// plus this Engine's lookups split by planned vs. unplanned
	// execution.
	Substrate SubstrateStats `json:"substrate"`

	// Gang reports the fleet-wide batch scheduler (nil when
	// WithGangWindow is not in effect): how many batches merged into
	// shared rounds and how many units were co-scheduled across jobs.
	Gang *gang.Stats `json:"gang,omitempty"`

	// Disk reports the persistence tier (nil when WithPersistence is not
	// in effect). A warm restart shows up here as Hits with zero
	// substrate misses: the year came off the log, not from a recompute.
	Disk *DiskStats `json:"disk,omitempty"`
}

// DiskStats snapshots the persistence tier: the Engine-level outcome
// counters (a Hit is a memo miss answered from disk; a Miss fell through
// to the simulator; DecodeErrors are records rejected by the gob decoder
// and recomputed) plus the record log's own accounting.
type DiskStats struct {
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	DecodeErrors uint64 `json:"decode_errors"`

	Entries        int    `json:"entries"`
	Appends        uint64 `json:"appends"`
	Dropped        uint64 `json:"dropped"`
	SizeBytes      int64  `json:"size_bytes"`
	Compactions    uint64 `json:"compactions"`
	Recovered      int    `json:"recovered"`
	TruncatedBytes int64  `json:"truncated_bytes"`

	// Resilience view: Degraded is true while the circuit breaker holds
	// the disk tier out of the serving path (the Engine answers
	// memory-only, counting each bypassed disk access in Skips);
	// WriteErrors/ReadErrors/Rehabs/Wedged/Pending mirror the store's own
	// failure accounting, and Breaker snapshots the state machine.
	Degraded    bool              `json:"degraded"`
	Skips       uint64            `json:"skips"`
	WriteErrors uint64            `json:"write_errors"`
	ReadErrors  uint64            `json:"read_errors"`
	Rehabs      uint64            `json:"rehabs"`
	Wedged      bool              `json:"wedged"`
	Pending     int               `json:"pending"`
	Breaker     *breaker.Snapshot `json:"breaker,omitempty"`
}

// SubstrateStats snapshots the substrate layer (the memoized generator
// years behind assessments). Hits/Misses/Entries are process-wide — the
// layer is shared by every Engine — while the planned/unplanned split
// counts only lookups made on this Engine's behalf: a lookup is
// "planned" when the triggering assessment was scheduled by the sweep
// planner (AssessMany/AssessBatch/Sweep with WithPlanner enabled) and
// "unplanned" otherwise (single Assess calls, or planning disabled). A
// healthy planned/unplanned hit-rate gap is the planner doing its job.
type SubstrateStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`

	PlannedHits     uint64 `json:"planned_hits"`
	PlannedMisses   uint64 `json:"planned_misses"`
	UnplannedHits   uint64 `json:"unplanned_hits"`
	UnplannedMisses uint64 `json:"unplanned_misses"`

	// CrossJobHits/CrossJobMisses are the subset of the planned pair made
	// by units the gang scheduler co-scheduled into a substrate group
	// spanning more than one batch. CrossJobHits > 0 is fleet-wide
	// sharing working: a year generated by one job answered another.
	CrossJobHits   uint64 `json:"cross_job_hits"`
	CrossJobMisses uint64 `json:"cross_job_misses"`
}

// CacheStats returns a snapshot of the cache counters, aggregated across
// shards, plus the substrate-layer view.
func (e *Engine) CacheStats() CacheStats {
	var out CacheStats
	for _, sh := range e.shards {
		s := sh.Stats()
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Entries += s.Entries
	}
	sub := substrate.Stats()
	out.Substrate = SubstrateStats{
		Hits:            sub.Hits,
		Misses:          sub.Misses,
		Entries:         sub.Entries,
		PlannedHits:     e.subPlannedHits.Load(),
		PlannedMisses:   e.subPlannedMisses.Load(),
		UnplannedHits:   e.subUnplannedHits.Load(),
		UnplannedMisses: e.subUnplannedMisses.Load(),
		CrossJobHits:    e.subCrossJobHits.Load(),
		CrossJobMisses:  e.subCrossJobMisses.Load(),
	}
	if e.gangSched != nil {
		g := e.gangSched.Stats()
		out.Gang = &g
	}
	if e.store != nil {
		st := e.store.Stats()
		snap := e.disk.Snapshot()
		out.Disk = &DiskStats{
			Hits:           e.diskHits.Load(),
			Misses:         e.diskMisses.Load(),
			DecodeErrors:   e.diskDecodeErr.Load(),
			Entries:        st.Entries,
			Appends:        st.Appended,
			Dropped:        st.Dropped,
			SizeBytes:      st.SizeBytes,
			Compactions:    st.Compactions,
			Recovered:      st.Recovered,
			TruncatedBytes: st.TruncatedBytes,
			Degraded:       snap.State != "closed",
			Skips:          e.diskSkips.Load(),
			WriteErrors:    st.WriteErrors,
			ReadErrors:     st.ReadErrors,
			Rehabs:         st.Rehabs,
			Wedged:         st.Wedged,
			Pending:        st.Pending,
			Breaker:        &snap,
		}
	}
	return out
}

// DiskDegraded reports whether the persistence tier is currently out of
// the serving path — either the breaker is not closed, or persistence
// was requested but never opened (storeErr). False when persistence was
// never requested.
func (e *Engine) DiskDegraded() bool {
	if e.storeErr != nil {
		return true
	}
	if e.disk == nil {
		return false
	}
	return e.disk.State() != breaker.Closed
}

// diskGate asks the breaker whether a disk access may proceed. A Probe
// decision runs a store.Sync — draining the queue, rehabilitating a
// wedged write path, and fsyncing, so "the probe succeeded" means the
// write path demonstrably works — and reports it to the breaker; a Deny
// counts a skip. Successful reads and writes are deliberately NOT
// reported as breaker successes: the store's writes are asynchronous
// (their failures arrive later via OnWriteError), so only a probe —
// which proves the write path synchronously — may close the breaker or
// reset the failure run.
func (e *Engine) diskGate() bool {
	switch e.disk.Acquire() {
	case breaker.Go:
		return true
	case breaker.Probe:
		err := e.store.Sync()
		e.disk.ProbeResult(err)
		if err != nil {
			e.diskSkips.Add(1)
			return false
		}
		return true
	default:
		e.diskSkips.Add(1)
		return false
	}
}

// diskLookup consults the persistence log for a memoized year. Decode
// failures (a record written by a buggy or interrupted producer) are
// counted and treated as misses — the year is recomputed and the fresh
// append supersedes the bad record. Read failures spend the breaker's
// error budget; while the breaker is open the lookup is skipped
// entirely and the Engine serves memory-only.
func (e *Engine) diskLookup(key fingerprint.Key) (core.Annual, bool) {
	if !e.diskGate() {
		e.diskMisses.Add(1)
		return core.Annual{}, false
	}
	raw, ok, err := e.store.Get(key[:])
	if err != nil {
		e.disk.Record(err)
		e.diskMisses.Add(1)
		return core.Annual{}, false
	}
	if !ok {
		e.diskMisses.Add(1)
		return core.Annual{}, false
	}
	var a core.Annual
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&a); err != nil {
		e.diskDecodeErr.Add(1)
		e.diskMisses.Add(1)
		return core.Annual{}, false
	}
	e.diskHits.Add(1)
	return a, true
}

// diskAppend writes a freshly simulated year through to the log. The
// append is asynchronous and may be dropped under queue pressure
// (observable as DiskStats.Dropped); the persistence tier is a cache,
// so a dropped record merely costs a recompute after the next restart.
// While the breaker is open the append is skipped (drop-and-count). A
// full queue (ErrBusy) is backpressure, not a disk failure, and does
// not spend the error budget — the disk's own failures arrive through
// the store's OnWriteError callback.
func (e *Engine) diskAppend(key fingerprint.Key, a core.Annual) {
	if !e.diskGate() {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a); err != nil {
		return
	}
	if err := e.store.Put(key[:], buf.Bytes()); err != nil && !errors.Is(err, store.ErrBusy) {
		e.disk.Record(err)
	}
}

// simulate runs the (hooked) hourly simulation for cfg — the single
// funnel every memo/disk miss falls through, so the assess-path fault
// hook sees exactly the computations that really happen.
func (e *Engine) simulate(cfg Config, tag subTag) (core.Annual, error) {
	if e.assessHook != nil {
		if err := e.assessHook(cfg.System.Name); err != nil {
			return core.Annual{}, err
		}
	}
	a, tr, err := cfg.AssessTraced()
	e.noteSubstrate(tag, tr)
	return a, err
}

// noteSubstrate folds one assessment's substrate trace into the
// planned/unplanned counters. Cross-job lookups count into both the
// planned pair (they are planned) and the cross-job subset.
func (e *Engine) noteSubstrate(tag subTag, tr core.SubstrateTrace) {
	switch tag {
	case subCrossJob:
		e.subCrossJobHits.Add(tr.Hits)
		e.subCrossJobMisses.Add(tr.Misses)
		fallthrough
	case subPlanned:
		e.subPlannedHits.Add(tr.Hits)
		e.subPlannedMisses.Add(tr.Misses)
	default:
		e.subUnplannedHits.Add(tr.Hits)
		e.subUnplannedMisses.Add(tr.Misses)
	}
}

// annualFor returns the memoized assessment of cfg, simulating at most
// once per fingerprint. The second return reports whether the result was
// served from cache. The fingerprint (core.Config.Fingerprint) streams a
// canonical binary encoding through a pooled hasher, so the cached path
// allocates nothing for key derivation. tag classifies the substrate
// lookups a cache miss performs for the planner-effectiveness split in
// CacheStats; a hit touches no substrate at all.
// A memo miss consults the persistence log (when attached) before
// simulating, and writes a fresh simulation through to it; an in-memory
// hit touches neither disk nor substrate.
func (e *Engine) annualFor(cfg Config, tag subTag) (core.Annual, bool, error) {
	if e.maxEntries <= 0 && e.store == nil {
		a, err := e.simulate(cfg, tag)
		return a, false, err
	}
	key := cfg.Fingerprint()
	compute := func() (core.Annual, error) {
		if e.store != nil {
			if a, ok := e.diskLookup(key); ok {
				return a, nil
			}
		}
		a, err := e.simulate(cfg, tag)
		if err == nil && e.store != nil {
			e.diskAppend(key, a)
		}
		return a, err
	}
	if e.maxEntries <= 0 {
		a, err := compute()
		return a, false, err
	}
	shard := e.shards[key.Shard(len(e.shards))]
	return shard.Get(key, compute)
}

// --- Live telemetry ---

// LiveStream returns the attached telemetry stream when the Engine
// carries exactly one (or a wildcard stream among several), or nil when
// the Engine runs simulation-only — the single-stream view kept for
// callers predating the registry.
func (e *Engine) LiveStream() *telemetry.Stream {
	if e.streams == nil {
		return nil
	}
	return e.streams.Single()
}

// LiveStreams returns the Engine's stream registry (nil when the Engine
// runs simulation-only): one telemetry.Stream per fleet system, plus an
// optional wildcard. The daemon's /livez and the UDP telemetry plane
// read and feed it directly.
func (e *Engine) LiveStreams() *telemetry.Registry { return e.streams }

// Ingest routes observed power samples to their systems' live streams,
// returning how many were accepted. A sample naming a system with no
// registered stream fails with an error wrapping telemetry.ErrNoStream;
// rejected samples (non-finite or negative power, hours behind the
// retained window, foreign systems) are reported in the joined error
// while the rest of the batch proceeds.
func (e *Engine) Ingest(samples ...telemetry.Sample) (accepted int, err error) {
	if e.streams == nil || e.streams.Len() == 0 {
		return 0, fmt.Errorf("thirstyflops: engine has no live stream (construct with WithLiveStream)")
	}
	errs := make([]error, 0, 4)
	for i, s := range samples {
		if ierr := e.streams.Ingest(s); ierr != nil {
			errs = append(errs, fmt.Errorf("sample %d: %w", i, ierr))
			continue
		}
		accepted++
	}
	return accepted, errors.Join(errs...)
}

// LiveInfo is the provenance block attached to live-sourced results: it
// records exactly which observed state of the stream the assessment was
// spliced from.
type LiveInfo struct {
	// System is the label of the stream the splice came from ("" when
	// the wildcard stream answered) — multi-stream clients verify
	// routing with it.
	System        string `json:"system,omitempty"`
	Epoch         uint64 `json:"epoch"`
	WindowLo      int    `json:"window_lo_hour"`
	WindowHi      int    `json:"window_hi_hour"`
	HoursObserved int    `json:"hours_observed"`
	Samples       uint64 `json:"samples_accepted"`
}

// liveKey chains the configuration fingerprint with the stream identity
// and the snapshot epoch. The epoch advances on every accepted sample,
// so a pre-ingest cached result is unreachable after new telemetry
// lands; the "live" tag keeps the key disjoint from the pure-simulation
// keyspace even at epoch 0.
func liveKey(base fingerprint.Key, s *telemetry.Stream, epoch uint64) fingerprint.Key {
	h := fingerprint.New()
	h.String("live")
	h.Bytes(base[:])
	s.Fingerprint(h)
	h.Uint64(epoch)
	key := h.Sum()
	h.Release()
	return key
}

// liveAnnualFor assesses cfg against observed demand: the memoized
// simulated year with the live window's averaged energy spliced over it.
// The splice is computed from one atomic stream snapshot and memoized
// under the epoch-chained key.
func (e *Engine) liveAnnualFor(cfg Config, tag subTag) (core.Annual, *LiveInfo, bool, error) {
	if e.streams == nil || e.streams.Len() == 0 {
		return core.Annual{}, nil, false, fmt.Errorf("thirstyflops: live source requested but the engine has no stream (construct with WithLiveStream)")
	}
	stream := e.streams.Resolve(cfg.System.Name)
	if stream == nil {
		return core.Annual{}, nil, false, fmt.Errorf("%w: %q (live source requested; streams exist for: %s)",
			telemetry.ErrNoStream, cfg.System.Name, strings.Join(e.streams.Systems(), ", "))
	}
	if yr := stream.Year(); yr != 0 && yr != cfg.Year {
		return core.Annual{}, nil, false, fmt.Errorf("thirstyflops: live stream observes year %d, request assesses %d", yr, cfg.Year)
	}
	w := stream.Window()
	info := &LiveInfo{
		System:        stream.System(),
		Epoch:         w.Epoch,
		WindowLo:      w.Lo,
		WindowHi:      w.Hi,
		HoursObserved: w.HoursObserved,
		Samples:       w.Samples,
	}
	compute := func() (core.Annual, error) {
		base, _, err := e.annualFor(cfg, tag)
		if err != nil {
			return core.Annual{}, err
		}
		return core.AnnualFrom(base.System, w.SpliceInto(base.Hourly)), nil
	}
	if e.maxEntries <= 0 {
		a, err := compute()
		return a, info, false, err
	}
	key := liveKey(cfg.Fingerprint(), stream, w.Epoch)
	shard := e.shards[key.Shard(len(e.shards))]
	a, cached, err := shard.Get(key, compute)
	return a, info, cached, err
}

// --- Request/result model ---

// AssessRequest asks for one system assessment. Exactly one of System (a
// bundled Table 1 name) or Custom (a JSON config document) selects the
// machine; Seed and Year override the configuration defaults when set.
type AssessRequest struct {
	System string          `json:"system,omitempty"`
	Custom *ConfigDocument `json:"custom,omitempty"`

	Seed *uint64 `json:"seed,omitempty"`
	Year *int    `json:"year,omitempty"`

	// Source selects the demand signal: "" or "simulated" answers from
	// the modeled year, "live" splices the attached telemetry stream's
	// observed window over it (SourceSimulated/SourceLive).
	Source string `json:"source,omitempty"`

	// Years is the lifetime over which the embodied footprint is
	// amortized; 0 means the 6-year default.
	Years float64 `json:"years,omitempty"`

	// IncludeSeries attaches the full hourly timeline to the result.
	IncludeSeries bool `json:"include_series,omitempty"`
	// Scenarios attaches the Fig. 14 energy-sourcing sweep.
	Scenarios bool `json:"scenarios,omitempty"`
	// Withdrawal attaches Table 3 withdrawal accounting under the default
	// contract.
	Withdrawal bool `json:"withdrawal,omitempty"`
}

// DefaultLifetimeYears amortizes embodied water when AssessRequest.Years
// is unset.
const DefaultLifetimeYears = 6

// resolveConfig materializes the request's configuration.
func (r AssessRequest) resolveConfig() (Config, error) {
	var cfg Config
	switch {
	case r.System != "" && r.Custom != nil:
		return Config{}, fmt.Errorf("thirstyflops: request names both a bundled system and a custom document")
	case r.System != "":
		c, err := core.ConfigFor(r.System)
		if err != nil {
			return Config{}, err
		}
		cfg = c
	case r.Custom != nil:
		c, err := configio.Build(*r.Custom)
		if err != nil {
			return Config{}, err
		}
		cfg = c
	default:
		return Config{}, fmt.Errorf("thirstyflops: request selects no system (set system or custom)")
	}
	if r.Seed != nil {
		cfg.Seed = *r.Seed
	}
	if r.Year != nil {
		cfg.Year = *r.Year
	}
	return cfg, nil
}

// AssessResult is the JSON-serializable outcome of one assessment. It
// is also the payload of the internal/wire binary frame (schema 1),
// which encodes these fields in declaration order: adding, removing, or
// reordering fields here requires a matching wire codec change and a
// schema bump (wire's TestSchemaPinsResultShape pins the field list).
type AssessResult struct {
	System string  `json:"system"`
	Site   string  `json:"site"`
	Region string  `json:"region"`
	Seed   uint64  `json:"seed"`
	Year   int     `json:"year"`
	Years  float64 `json:"years"`

	EnergyKWh    float64 `json:"energy_kwh_per_year"`
	DirectL      float64 `json:"direct_l_per_year"`
	IndirectL    float64 `json:"indirect_l_per_year"`
	OperationalL float64 `json:"operational_l_per_year"`
	DirectShare  float64 `json:"direct_share"`
	CarbonKg     float64 `json:"carbon_kg_per_year"`

	WaterIntensity    float64 `json:"water_intensity_l_per_kwh"`
	AdjustedIntensity float64 `json:"wsi_adjusted_intensity_l_per_kwh"`

	EmbodiedL      float64            `json:"embodied_l"`
	LifetimeTotalL float64            `json:"lifetime_total_l"`
	EmbodiedShares map[string]float64 `json:"embodied_shares"`

	Scenarios  []ScenarioResult `json:"scenarios,omitempty"`
	Withdrawal *Withdrawal      `json:"withdrawal,omitempty"`
	Series     *Series          `json:"series,omitempty"`

	// Source is the demand signal the result was computed against
	// ("simulated" or "live"); Live carries the observed-window
	// provenance when the source is live.
	Source string    `json:"source"`
	Live   *LiveInfo `json:"live,omitempty"`

	// Cached reports whether the hourly simulation was served from the
	// Engine's memo rather than recomputed.
	Cached bool `json:"cached"`
}

// Demand-signal sources for AssessRequest.Source.
const (
	SourceSimulated = "simulated"
	SourceLive      = "live"
)

// Assess evaluates one request. The deterministic simulation is memoized
// per configuration; the derived sections (lifetime, scenarios,
// withdrawal) are recomputed from the cached year.
func (e *Engine) Assess(ctx context.Context, req AssessRequest) (*AssessResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg, err := req.resolveConfig()
	if err != nil {
		return nil, err
	}
	return e.assessResolved(ctx, req, cfg, subUnplanned)
}

// assessResolved evaluates a request whose configuration is already
// materialized — the shared tail of Assess and the planner's batch
// execution, which resolves configs up front to fingerprint their
// substrate identities. tag classifies the substrate accounting.
func (e *Engine) assessResolved(ctx context.Context, req AssessRequest, cfg Config, tag subTag) (*AssessResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	years := req.Years
	if years == 0 {
		years = DefaultLifetimeYears
	}
	if years < 0 {
		return nil, fmt.Errorf("thirstyflops: negative lifetime %v", years)
	}

	var (
		a      core.Annual
		cached bool
		live   *LiveInfo
		err    error
	)
	switch req.Source {
	case "", SourceSimulated:
		a, cached, err = e.annualFor(cfg, tag)
	case SourceLive:
		a, live, cached, err = e.liveAnnualFor(cfg, tag)
	default:
		return nil, fmt.Errorf("thirstyflops: unknown source %q (want %q or %q)",
			req.Source, SourceSimulated, SourceLive)
	}
	if err != nil {
		return nil, err
	}
	bd, err := cfg.EmbodiedBreakdown()
	if err != nil {
		return nil, err
	}
	f, err := cfg.LifetimeFromBreakdown(a, bd, years)
	if err != nil {
		return nil, err
	}
	_, _, wi := a.WaterIntensity()

	res := &AssessResult{
		System: a.System,
		Site:   cfg.Site.Name,
		Region: cfg.Region.Name,
		Seed:   cfg.Seed,
		Year:   cfg.Year,
		Years:  years,

		EnergyKWh:    float64(a.Energy),
		DirectL:      float64(a.Direct),
		IndirectL:    float64(a.Indirect),
		OperationalL: float64(a.Operational()),
		DirectShare:  a.DirectShare(),
		CarbonKg:     a.Carbon.Kilograms(),

		WaterIntensity:    float64(wi),
		AdjustedIntensity: float64(a.AdjustedWaterIntensity(cfg.Scarcity)),

		EmbodiedL:      float64(bd.Total()),
		LifetimeTotalL: float64(f.Total()),
		EmbodiedShares: map[string]float64{},

		Source: SourceSimulated,
		Live:   live,
		Cached: cached,
	}
	if req.Source == SourceLive {
		res.Source = SourceLive
	}
	for _, c := range embodied.Components() {
		res.EmbodiedShares[c.String()] = bd.Share(c)
	}

	if req.Scenarios {
		rs, err := cfg.ScenarioSweepFrom(a)
		if err != nil {
			return nil, err
		}
		res.Scenarios = rs
	}
	if req.Withdrawal {
		discharge := Liters(float64(a.Direct) / 3)
		w, err := core.ComputeWithdrawal(a.Operational(), core.DefaultWithdrawalParams(discharge))
		if err != nil {
			return nil, err
		}
		res.Withdrawal = &w
	}
	if req.IncludeSeries {
		s := a.Hourly.Clone()
		res.Series = &s
	}
	return res, nil
}

// AssessMany evaluates a batch of requests across the Engine's worker
// pool, preserving order. Requests sharing a configuration simulate
// once, and (unless WithPlanner(false)) the batch is scheduled by the
// substrate-aware planner so requests sharing generator years run
// consecutively on one worker. Failed requests leave nil slots; the
// joined error reports every failure.
func (e *Engine) AssessMany(ctx context.Context, reqs []AssessRequest) ([]*AssessResult, error) {
	return e.AssessBatch(ctx, reqs, nil)
}

// AssessBatch is AssessMany plus a completion hook: onResult (when
// non-nil) is invoked once per request as it finishes, from whichever
// worker goroutine ran it — the progress feed behind the daemon's async
// job queue. res is nil exactly when err is non-nil.
//
// Execution order is the planner's: requests are fingerprinted by
// substrate identity (core.Config.SubstrateKeys), grouped, clustered by
// shared components, and split into contiguous per-worker spans
// (internal/plan). Results are always returned in request order
// regardless of execution order.
// assessSafe is assessResolved with per-unit panic containment: a
// panicking configuration fails that one unit with an error instead of
// killing the worker goroutine (and with it the process) — a batch of
// ten thousand units survives one poisoned config.
func (e *Engine) assessSafe(ctx context.Context, req AssessRequest, cfg Config, tag subTag) (res *AssessResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("thirstyflops: assessment panic: %v", r)
		}
	}()
	return e.assessResolved(ctx, req, cfg, tag)
}

func (e *Engine) AssessBatch(ctx context.Context, reqs []AssessRequest, onResult func(i int, res *AssessResult, err error)) ([]*AssessResult, error) {
	results := make([]*AssessResult, len(reqs))
	errs := make([]error, len(reqs))
	note := func(i int, res *AssessResult, err error) {
		if err != nil {
			errs[i] = fmt.Errorf("request %d: %w", i, err)
		} else {
			results[i] = res
		}
		if onResult != nil {
			onResult(i, res, err)
		}
	}

	// Resolve every request up front: the planner derives substrate
	// identities from materialized configs, and resolution failures
	// (unknown system, invalid document) drop out of the schedule
	// before any simulation runs. Fingerprinting is skipped entirely
	// when planning is off — the unplanned path never reads the keys.
	cfgs := make([]Config, len(reqs))
	resolved := make([]int, 0, len(reqs))
	var items []plan.Item
	if e.planner {
		items = make([]plan.Item, 0, len(reqs))
	}
	for i, r := range reqs {
		cfg, err := r.resolveConfig()
		if err != nil {
			note(i, nil, err)
			continue
		}
		cfgs[i] = cfg
		resolved = append(resolved, i)
		if e.planner {
			ks := cfg.SubstrateKeys()
			items = append(items, plan.Item{Index: i, Substrate: ks.Combined(), Cluster: ks.Cluster()})
		}
	}

	workers := e.workers
	if workers > len(resolved) {
		workers = len(resolved)
	}
	if workers < 1 {
		workers = 1
	}

	// Gang path: hand the fingerprinted items to the shared fleet-wide
	// scheduler, which merges them with any other batch arriving within
	// the merge window and plans the union. The run callback demuxes
	// completions back into this batch's slots; on cancellation the
	// scheduler invokes it for every unit no worker claimed, so nil
	// result slots still pair with a reported error.
	if e.planner && e.gangSched != nil {
		e.gangSched.Submit(ctx, items, func(i int, crossJob bool) {
			if err := ctx.Err(); err != nil {
				note(i, nil, err)
				return
			}
			tag := subPlanned
			if crossJob {
				tag = subCrossJob
			}
			res, err := e.assessSafe(ctx, reqs[i], cfgs[i], tag)
			note(i, res, err)
		})
		return results, joinUnitErrors(errs)
	}

	var wg sync.WaitGroup
	if e.planner {
		p := plan.Build(items, workers)
		for _, span := range p.Spans {
			wg.Add(1)
			go func(span []int) {
				defer wg.Done()
				for k, i := range span {
					if err := ctx.Err(); err != nil {
						// Mark the span's remainder, so nil result
						// slots always pair with a reported error.
						for _, j := range span[k:] {
							note(j, nil, err)
						}
						return
					}
					res, err := e.assessSafe(ctx, reqs[i], cfgs[i], subPlanned)
					note(i, res, err)
				}
			}(span)
		}
		wg.Wait()
		return results, joinUnitErrors(errs)
	}

	// Unplanned arrival-order fan-out: the pre-planner baseline, kept
	// for comparison (benchmarks, WithPlanner(false)).
	idx := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := e.assessSafe(ctx, reqs[i], cfgs[i], subUnplanned)
				note(i, res, err)
			}
		}()
	}
feed:
	for k, i := range resolved {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Mark every request not yet handed to a worker.
			for _, rest := range resolved[k:] {
				note(rest, nil, ctx.Err())
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return results, joinUnitErrors(errs)
}

// joinUnitErrors joins a batch's per-unit errors, collapsing the
// cancellation flood: a batch canceled mid-flight fails every
// unscheduled unit with the same context error, and joining ten
// thousand copies of "request N: context canceled" produces an O(batch)
// error string nobody can read. Context cancellation/deadline errors
// collapse into one counted summary (still matching errors.Is
// context.Canceled via the wrapped first instance); real per-unit
// failures are kept individually.
func joinUnitErrors(errs []error) error {
	kept := errs[:0:0]
	var (
		canceled int
		first    error
	)
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			canceled++
			if first == nil {
				first = err
			}
		default:
			kept = append(kept, err)
		}
	}
	switch {
	case canceled == 1:
		kept = append(kept, first)
	case canceled > 1:
		kept = append(kept, fmt.Errorf("%d units canceled before completion (first: %w)", canceled, first))
	}
	return errors.Join(kept...)
}

// SweepRequest asks for the Fig. 14 energy-sourcing comparison across
// systems. An empty Systems list sweeps all bundled systems.
type SweepRequest struct {
	Systems []string `json:"systems,omitempty"`
	Seed    *uint64  `json:"seed,omitempty"`
	Year    *int     `json:"year,omitempty"`
}

// SystemSweep is one system's scenario comparison.
type SystemSweep struct {
	System    string           `json:"system"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// SweepResult aggregates a scenario sweep.
type SweepResult struct {
	Systems []SystemSweep `json:"systems"`
}

// Sweep compares the energy-sourcing scenarios for each requested system,
// fanning out across the worker pool and reusing cached assessments.
func (e *Engine) Sweep(ctx context.Context, req SweepRequest) (*SweepResult, error) {
	names := req.Systems
	if len(names) == 0 {
		names = SystemNames()
	}
	reqs := make([]AssessRequest, len(names))
	for i, n := range names {
		reqs[i] = AssessRequest{System: n, Seed: req.Seed, Year: req.Year, Scenarios: true}
	}
	results, err := e.AssessMany(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := &SweepResult{Systems: make([]SystemSweep, len(results))}
	for i, r := range results {
		out.Systems[i] = SystemSweep{System: r.System, Scenarios: r.Scenarios}
	}
	return out, nil
}

// BatchRequest describes a potentially large assessment sweep — the
// submission shape of the daemon's async job queue (POST /jobs). Exactly
// one of two forms selects the work: an explicit Requests list, or a
// cross-product template (Systems x Seeds x Years) that Expand
// materializes server-side so wide sweeps don't need megabytes of
// request body. Scenarios and Withdrawal apply to every request in
// either form (explicit requests keep their own flags too).
type BatchRequest struct {
	Requests []AssessRequest `json:"requests,omitempty"`

	// Cross-product template, used when Requests is empty. Empty
	// Systems sweeps all bundled systems; empty Seeds/Years keep the
	// configuration defaults.
	Systems []string `json:"systems,omitempty"`
	Seeds   []uint64 `json:"seeds,omitempty"`
	Years   []int    `json:"years,omitempty"`

	Scenarios  bool `json:"scenarios,omitempty"`
	Withdrawal bool `json:"withdrawal,omitempty"`
}

// Normalize returns the batch with duplicate cross-product template
// entries removed — repeated names in Systems, repeated Seeds, repeated
// Years — plus how many units the dedup collapsed. A duplicated entry
// silently multiplies every combination it participates in: the
// duplicates simulate (or at best memo-hit) for nothing and still count
// against the daemon's -job-max-units cap, so the daemon normalizes
// every submission at expansion and reports the collapsed count in the
// job status. First-occurrence order is preserved; a batch with an
// explicit Requests list is returned untouched (request indices are the
// caller's contract, and distinct requests may legitimately repeat a
// configuration with different flags).
func (b BatchRequest) Normalize() (BatchRequest, int) {
	if len(b.Requests) > 0 {
		return b, 0
	}
	before := b.Units()
	b.Systems = dedupKeepOrder(b.Systems)
	b.Seeds = dedupKeepOrder(b.Seeds)
	b.Years = dedupKeepOrder(b.Years)
	return b, before - b.Units()
}

// dedupKeepOrder drops repeated values, keeping first-occurrence order.
// The input slice is returned as-is when it has no duplicates.
func dedupKeepOrder[T comparable](s []T) []T {
	if len(s) < 2 {
		return s
	}
	seen := make(map[T]struct{}, len(s))
	out := s[:0:0]
	for _, v := range s {
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	if len(out) == len(s) {
		return s
	}
	return out
}

// Units returns how many assessments the batch will expand to, without
// materializing them — the daemon sizes a submission against its unit
// cap with this before Expand allocates anything. Saturates at MaxInt
// on absurd template products instead of overflowing.
func (b BatchRequest) Units() int {
	if len(b.Requests) > 0 {
		return len(b.Requests)
	}
	n := len(b.Systems)
	if n == 0 {
		n = len(SystemNames())
	}
	seeds := max(len(b.Seeds), 1)
	years := max(len(b.Years), 1)
	if seeds > math.MaxInt/n {
		return math.MaxInt
	}
	if years > math.MaxInt/(n*seeds) {
		return math.MaxInt
	}
	return n * seeds * years
}

// Expand materializes the batch's request list. The cross-product order
// is systems-outer (system, then seed, then year), but callers should
// not rely on it: the planner reschedules execution anyway. Callers
// exposed to untrusted templates must bound Units() first — the
// expansion allocates one request per unit.
func (b BatchRequest) Expand() ([]AssessRequest, error) {
	if len(b.Requests) > 0 {
		if len(b.Systems) != 0 || len(b.Seeds) != 0 || len(b.Years) != 0 {
			return nil, fmt.Errorf("thirstyflops: batch sets both an explicit request list and a cross-product template")
		}
		if !b.Scenarios && !b.Withdrawal {
			return b.Requests, nil
		}
		out := make([]AssessRequest, len(b.Requests))
		copy(out, b.Requests)
		for i := range out {
			out[i].Scenarios = out[i].Scenarios || b.Scenarios
			out[i].Withdrawal = out[i].Withdrawal || b.Withdrawal
		}
		return out, nil
	}
	systems := b.Systems
	if len(systems) == 0 {
		systems = SystemNames()
	}
	seeds := make([]*uint64, 0, max(len(b.Seeds), 1))
	if len(b.Seeds) == 0 {
		seeds = append(seeds, nil)
	}
	for i := range b.Seeds {
		seeds = append(seeds, &b.Seeds[i])
	}
	years := make([]*int, 0, max(len(b.Years), 1))
	if len(b.Years) == 0 {
		years = append(years, nil)
	}
	for i := range b.Years {
		years = append(years, &b.Years[i])
	}
	out := make([]AssessRequest, 0, len(systems)*len(seeds)*len(years))
	for _, sys := range systems {
		for _, seed := range seeds {
			for _, year := range years {
				out = append(out, AssessRequest{
					System:     sys,
					Seed:       seed,
					Year:       year,
					Scenarios:  b.Scenarios,
					Withdrawal: b.Withdrawal,
				})
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("thirstyflops: batch expands to no requests")
	}
	return out, nil
}

// Water500Request parameterizes the efficiency ranking; Seed and Year
// override the bundled configuration defaults for every system.
type Water500Request struct {
	Seed *uint64 `json:"seed,omitempty"`
	Year *int    `json:"year,omitempty"`
}

// Water500Result carries the ranking, most water-efficient system first.
type Water500Result struct {
	Entries []Water500Entry `json:"entries"`
}

// Water500 ranks the bundled systems by operational water per unit of
// delivered performance, assessing across the worker pool and reusing
// cached assessments. Water500From returns the entries already sorted by
// rank.
func (e *Engine) Water500(ctx context.Context, req Water500Request) (*Water500Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfgs, err := core.AllConfigs()
	if err != nil {
		return nil, err
	}
	for i := range cfgs {
		if req.Seed != nil {
			cfgs[i].Seed = *req.Seed
		}
		if req.Year != nil {
			cfgs[i].Year = *req.Year
		}
	}

	annuals := make([]core.Annual, len(cfgs))
	errs := make([]error, len(cfgs))
	workers := e.workers
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				annuals[i], _, errs[i] = e.annualFor(cfgs[i], subUnplanned)
			}
		}()
	}
feed:
	for i := range cfgs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Mark every config not yet handed to a worker, so nil
			// annual slots always pair with a reported error and the
			// feeder can never block on a drained pool.
			for j := i; j < len(cfgs); j++ {
				errs[j] = fmt.Errorf("system %s: %w", cfgs[j].System.Name, ctx.Err())
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	entries, err := core.Water500From(cfgs, annuals)
	if err != nil {
		return nil, err
	}
	return &Water500Result{Entries: entries}, nil
}
