package thirstyflops

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"thirstyflops/internal/cache"
	"thirstyflops/internal/configio"
	"thirstyflops/internal/core"
	"thirstyflops/internal/embodied"
	"thirstyflops/internal/fingerprint"
	"thirstyflops/internal/telemetry"
)

// Engine is a reusable, concurrency-safe assessment session. The yearly
// simulation behind an assessment is a pure function of the Config (which
// embeds Seed and Year), so the Engine memoizes it: repeated requests for
// the same configuration — across goroutines, sweeps, rankings, and HTTP
// handlers — simulate once and share the result. An Engine is cheap
// enough to create per process and is safe for use from multiple
// goroutines; the zero value is not usable, construct one with NewEngine.
//
// The memo is split into power-of-two shards selected by a fingerprint
// prefix. Each shard carries its own mutex and an O(1) doubly-linked LRU,
// so concurrent requests for different configurations do not serialize on
// a single cache lock and a hit never pays a linear recency scan.
type Engine struct {
	workers    int
	maxEntries int
	shardHint  int
	shards     []*cache.Cache[fingerprint.Key, core.Annual]
	stream     *telemetry.Stream
}

// Option configures an Engine.
type Option func(*Engine)

// WithCache bounds the total number of memoized assessments (default 64).
// Least-recently-touched entries are evicted first. The bound is
// apportioned across the cache shards, so the effective capacity is n
// rounded down to a multiple of the shard count. n <= 0 disables caching.
func WithCache(n int) Option {
	return func(e *Engine) { e.maxEntries = n }
}

// WithWorkers sets the AssessMany/Sweep fan-out width (default
// GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.workers = n
		}
	}
}

// WithLiveStream attaches a telemetry stream: Engine.Ingest feeds it and
// requests with Source "live" answer against a simulated year spliced
// with the stream's observed demand. Live results are cached under a key
// that chains the configuration fingerprint with the stream epoch, so a
// cached assessment can never survive past the samples it was computed
// from.
func WithLiveStream(s *telemetry.Stream) Option {
	return func(e *Engine) { e.stream = s }
}

// defaultShards is the shard-count ceiling: enough to relieve contention
// at typical serving parallelism without fragmenting small caches.
const defaultShards = 8

// WithShards overrides the cache shard count (default min(8, capacity/4),
// at least 1). The value is clamped to a power of two no larger than the
// cache capacity, so the capacity bound is always honored.
func WithShards(n int) Option {
	return func(e *Engine) { e.shardHint = n }
}

// shardCount resolves the effective power-of-two shard count.
func (e *Engine) shardCount() int {
	limit := e.maxEntries
	hint := e.shardHint
	if hint <= 0 {
		// Keep at least 4 entries per shard so sharding never costs
		// meaningful capacity at small cache sizes.
		hint = min(defaultShards, limit/4)
	}
	n := 1
	for n*2 <= min(hint, limit) {
		n *= 2
	}
	return n
}

// NewEngine builds an assessment session.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		workers:    runtime.GOMAXPROCS(0),
		maxEntries: 64,
	}
	for _, o := range opts {
		o(e)
	}
	if e.maxEntries > 0 {
		shards := e.shardCount()
		perShard := e.maxEntries / shards
		e.shards = make([]*cache.Cache[fingerprint.Key, core.Annual], shards)
		for i := range e.shards {
			e.shards[i] = cache.New[fingerprint.Key, core.Annual](perShard)
		}
	}
	return e
}

var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the shared package-level Engine backing the
// deprecated one-shot top-level helpers.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() { defaultEngine = NewEngine() })
	return defaultEngine
}

// CacheStats reports the Engine's memoization behavior.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// CacheStats returns a snapshot of the cache counters, aggregated across
// shards.
func (e *Engine) CacheStats() CacheStats {
	var out CacheStats
	for _, sh := range e.shards {
		s := sh.Stats()
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Entries += s.Entries
	}
	return out
}

// annualFor returns the memoized assessment of cfg, simulating at most
// once per fingerprint. The second return reports whether the result was
// served from cache. The fingerprint (core.Config.Fingerprint) streams a
// canonical binary encoding through a pooled hasher, so the cached path
// allocates nothing for key derivation.
func (e *Engine) annualFor(cfg Config) (core.Annual, bool, error) {
	if e.maxEntries <= 0 {
		a, err := cfg.Assess()
		return a, false, err
	}
	key := cfg.Fingerprint()
	shard := e.shards[key.Shard(len(e.shards))]
	return shard.Get(key, cfg.Assess)
}

// --- Live telemetry ---

// LiveStream returns the attached telemetry stream, or nil when the
// Engine runs simulation-only.
func (e *Engine) LiveStream() *telemetry.Stream { return e.stream }

// Ingest feeds observed power samples into the attached live stream,
// returning how many were accepted. Rejected samples (non-finite or
// negative power, hours behind the retained window, foreign systems) are
// reported in the joined error while the rest of the batch proceeds.
func (e *Engine) Ingest(samples ...telemetry.Sample) (accepted int, err error) {
	if e.stream == nil {
		return 0, fmt.Errorf("thirstyflops: engine has no live stream (construct with WithLiveStream)")
	}
	errs := make([]error, 0, 4)
	for i, s := range samples {
		if ierr := e.stream.Ingest(s); ierr != nil {
			errs = append(errs, fmt.Errorf("sample %d: %w", i, ierr))
			continue
		}
		accepted++
	}
	return accepted, errors.Join(errs...)
}

// LiveInfo is the provenance block attached to live-sourced results: it
// records exactly which observed state of the stream the assessment was
// spliced from.
type LiveInfo struct {
	Epoch         uint64 `json:"epoch"`
	WindowLo      int    `json:"window_lo_hour"`
	WindowHi      int    `json:"window_hi_hour"`
	HoursObserved int    `json:"hours_observed"`
	Samples       uint64 `json:"samples_accepted"`
}

// liveKey chains the configuration fingerprint with the stream identity
// and the snapshot epoch. The epoch advances on every accepted sample,
// so a pre-ingest cached result is unreachable after new telemetry
// lands; the "live" tag keeps the key disjoint from the pure-simulation
// keyspace even at epoch 0.
func liveKey(base fingerprint.Key, s *telemetry.Stream, epoch uint64) fingerprint.Key {
	h := fingerprint.New()
	h.String("live")
	h.Bytes(base[:])
	s.Fingerprint(h)
	h.Uint64(epoch)
	key := h.Sum()
	h.Release()
	return key
}

// liveAnnualFor assesses cfg against observed demand: the memoized
// simulated year with the live window's averaged energy spliced over it.
// The splice is computed from one atomic stream snapshot and memoized
// under the epoch-chained key.
func (e *Engine) liveAnnualFor(cfg Config) (core.Annual, *LiveInfo, bool, error) {
	if e.stream == nil {
		return core.Annual{}, nil, false, fmt.Errorf("thirstyflops: live source requested but the engine has no stream (construct with WithLiveStream)")
	}
	if sys := e.stream.System(); sys != "" && sys != cfg.System.Name {
		return core.Annual{}, nil, false, fmt.Errorf("thirstyflops: live stream observes %q, request assesses %q", sys, cfg.System.Name)
	}
	if yr := e.stream.Year(); yr != 0 && yr != cfg.Year {
		return core.Annual{}, nil, false, fmt.Errorf("thirstyflops: live stream observes year %d, request assesses %d", yr, cfg.Year)
	}
	w := e.stream.Window()
	info := &LiveInfo{
		Epoch:         w.Epoch,
		WindowLo:      w.Lo,
		WindowHi:      w.Hi,
		HoursObserved: w.HoursObserved,
		Samples:       w.Samples,
	}
	compute := func() (core.Annual, error) {
		base, _, err := e.annualFor(cfg)
		if err != nil {
			return core.Annual{}, err
		}
		return core.AnnualFrom(base.System, w.SpliceInto(base.Hourly)), nil
	}
	if e.maxEntries <= 0 {
		a, err := compute()
		return a, info, false, err
	}
	key := liveKey(cfg.Fingerprint(), e.stream, w.Epoch)
	shard := e.shards[key.Shard(len(e.shards))]
	a, cached, err := shard.Get(key, compute)
	return a, info, cached, err
}

// --- Request/result model ---

// AssessRequest asks for one system assessment. Exactly one of System (a
// bundled Table 1 name) or Custom (a JSON config document) selects the
// machine; Seed and Year override the configuration defaults when set.
type AssessRequest struct {
	System string          `json:"system,omitempty"`
	Custom *ConfigDocument `json:"custom,omitempty"`

	Seed *uint64 `json:"seed,omitempty"`
	Year *int    `json:"year,omitempty"`

	// Source selects the demand signal: "" or "simulated" answers from
	// the modeled year, "live" splices the attached telemetry stream's
	// observed window over it (SourceSimulated/SourceLive).
	Source string `json:"source,omitempty"`

	// Years is the lifetime over which the embodied footprint is
	// amortized; 0 means the 6-year default.
	Years float64 `json:"years,omitempty"`

	// IncludeSeries attaches the full hourly timeline to the result.
	IncludeSeries bool `json:"include_series,omitempty"`
	// Scenarios attaches the Fig. 14 energy-sourcing sweep.
	Scenarios bool `json:"scenarios,omitempty"`
	// Withdrawal attaches Table 3 withdrawal accounting under the default
	// contract.
	Withdrawal bool `json:"withdrawal,omitempty"`
}

// DefaultLifetimeYears amortizes embodied water when AssessRequest.Years
// is unset.
const DefaultLifetimeYears = 6

// resolveConfig materializes the request's configuration.
func (r AssessRequest) resolveConfig() (Config, error) {
	var cfg Config
	switch {
	case r.System != "" && r.Custom != nil:
		return Config{}, fmt.Errorf("thirstyflops: request names both a bundled system and a custom document")
	case r.System != "":
		c, err := core.ConfigFor(r.System)
		if err != nil {
			return Config{}, err
		}
		cfg = c
	case r.Custom != nil:
		c, err := configio.Build(*r.Custom)
		if err != nil {
			return Config{}, err
		}
		cfg = c
	default:
		return Config{}, fmt.Errorf("thirstyflops: request selects no system (set system or custom)")
	}
	if r.Seed != nil {
		cfg.Seed = *r.Seed
	}
	if r.Year != nil {
		cfg.Year = *r.Year
	}
	return cfg, nil
}

// AssessResult is the JSON-serializable outcome of one assessment.
type AssessResult struct {
	System string  `json:"system"`
	Site   string  `json:"site"`
	Region string  `json:"region"`
	Seed   uint64  `json:"seed"`
	Year   int     `json:"year"`
	Years  float64 `json:"years"`

	EnergyKWh    float64 `json:"energy_kwh_per_year"`
	DirectL      float64 `json:"direct_l_per_year"`
	IndirectL    float64 `json:"indirect_l_per_year"`
	OperationalL float64 `json:"operational_l_per_year"`
	DirectShare  float64 `json:"direct_share"`
	CarbonKg     float64 `json:"carbon_kg_per_year"`

	WaterIntensity    float64 `json:"water_intensity_l_per_kwh"`
	AdjustedIntensity float64 `json:"wsi_adjusted_intensity_l_per_kwh"`

	EmbodiedL      float64            `json:"embodied_l"`
	LifetimeTotalL float64            `json:"lifetime_total_l"`
	EmbodiedShares map[string]float64 `json:"embodied_shares"`

	Scenarios  []ScenarioResult `json:"scenarios,omitempty"`
	Withdrawal *Withdrawal      `json:"withdrawal,omitempty"`
	Series     *Series          `json:"series,omitempty"`

	// Source is the demand signal the result was computed against
	// ("simulated" or "live"); Live carries the observed-window
	// provenance when the source is live.
	Source string    `json:"source"`
	Live   *LiveInfo `json:"live,omitempty"`

	// Cached reports whether the hourly simulation was served from the
	// Engine's memo rather than recomputed.
	Cached bool `json:"cached"`
}

// Demand-signal sources for AssessRequest.Source.
const (
	SourceSimulated = "simulated"
	SourceLive      = "live"
)

// Assess evaluates one request. The deterministic simulation is memoized
// per configuration; the derived sections (lifetime, scenarios,
// withdrawal) are recomputed from the cached year.
func (e *Engine) Assess(ctx context.Context, req AssessRequest) (*AssessResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg, err := req.resolveConfig()
	if err != nil {
		return nil, err
	}
	years := req.Years
	if years == 0 {
		years = DefaultLifetimeYears
	}
	if years < 0 {
		return nil, fmt.Errorf("thirstyflops: negative lifetime %v", years)
	}

	var (
		a      core.Annual
		cached bool
		live   *LiveInfo
	)
	switch req.Source {
	case "", SourceSimulated:
		a, cached, err = e.annualFor(cfg)
	case SourceLive:
		a, live, cached, err = e.liveAnnualFor(cfg)
	default:
		return nil, fmt.Errorf("thirstyflops: unknown source %q (want %q or %q)",
			req.Source, SourceSimulated, SourceLive)
	}
	if err != nil {
		return nil, err
	}
	bd, err := cfg.EmbodiedBreakdown()
	if err != nil {
		return nil, err
	}
	f, err := cfg.LifetimeFromBreakdown(a, bd, years)
	if err != nil {
		return nil, err
	}
	_, _, wi := a.WaterIntensity()

	res := &AssessResult{
		System: a.System,
		Site:   cfg.Site.Name,
		Region: cfg.Region.Name,
		Seed:   cfg.Seed,
		Year:   cfg.Year,
		Years:  years,

		EnergyKWh:    float64(a.Energy),
		DirectL:      float64(a.Direct),
		IndirectL:    float64(a.Indirect),
		OperationalL: float64(a.Operational()),
		DirectShare:  a.DirectShare(),
		CarbonKg:     a.Carbon.Kilograms(),

		WaterIntensity:    float64(wi),
		AdjustedIntensity: float64(a.AdjustedWaterIntensity(cfg.Scarcity)),

		EmbodiedL:      float64(bd.Total()),
		LifetimeTotalL: float64(f.Total()),
		EmbodiedShares: map[string]float64{},

		Source: SourceSimulated,
		Live:   live,
		Cached: cached,
	}
	if req.Source == SourceLive {
		res.Source = SourceLive
	}
	for _, c := range embodied.Components() {
		res.EmbodiedShares[c.String()] = bd.Share(c)
	}

	if req.Scenarios {
		rs, err := cfg.ScenarioSweepFrom(a)
		if err != nil {
			return nil, err
		}
		res.Scenarios = rs
	}
	if req.Withdrawal {
		discharge := Liters(float64(a.Direct) / 3)
		w, err := core.ComputeWithdrawal(a.Operational(), core.DefaultWithdrawalParams(discharge))
		if err != nil {
			return nil, err
		}
		res.Withdrawal = &w
	}
	if req.IncludeSeries {
		s := a.Hourly.Clone()
		res.Series = &s
	}
	return res, nil
}

// AssessMany evaluates a batch of requests across the Engine's worker
// pool, preserving order. Requests sharing a configuration simulate once.
// Failed requests leave nil slots; the joined error reports every
// failure.
func (e *Engine) AssessMany(ctx context.Context, reqs []AssessRequest) ([]*AssessResult, error) {
	results := make([]*AssessResult, len(reqs))
	errs := make([]error, len(reqs))

	workers := e.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := e.Assess(ctx, reqs[i])
				if err != nil {
					errs[i] = fmt.Errorf("request %d: %w", i, err)
					continue
				}
				results[i] = res
			}
		}()
	}
feed:
	for i := range reqs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Mark every request not yet handed to a worker, so nil
			// result slots always pair with a reported error.
			for j := i; j < len(reqs); j++ {
				errs[j] = fmt.Errorf("request %d: %w", j, ctx.Err())
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return results, errors.Join(errs...)
}

// SweepRequest asks for the Fig. 14 energy-sourcing comparison across
// systems. An empty Systems list sweeps all bundled systems.
type SweepRequest struct {
	Systems []string `json:"systems,omitempty"`
	Seed    *uint64  `json:"seed,omitempty"`
	Year    *int     `json:"year,omitempty"`
}

// SystemSweep is one system's scenario comparison.
type SystemSweep struct {
	System    string           `json:"system"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// SweepResult aggregates a scenario sweep.
type SweepResult struct {
	Systems []SystemSweep `json:"systems"`
}

// Sweep compares the energy-sourcing scenarios for each requested system,
// fanning out across the worker pool and reusing cached assessments.
func (e *Engine) Sweep(ctx context.Context, req SweepRequest) (*SweepResult, error) {
	names := req.Systems
	if len(names) == 0 {
		names = SystemNames()
	}
	reqs := make([]AssessRequest, len(names))
	for i, n := range names {
		reqs[i] = AssessRequest{System: n, Seed: req.Seed, Year: req.Year, Scenarios: true}
	}
	results, err := e.AssessMany(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := &SweepResult{Systems: make([]SystemSweep, len(results))}
	for i, r := range results {
		out.Systems[i] = SystemSweep{System: r.System, Scenarios: r.Scenarios}
	}
	return out, nil
}

// Water500Request parameterizes the efficiency ranking; Seed and Year
// override the bundled configuration defaults for every system.
type Water500Request struct {
	Seed *uint64 `json:"seed,omitempty"`
	Year *int    `json:"year,omitempty"`
}

// Water500Result carries the ranking, most water-efficient system first.
type Water500Result struct {
	Entries []Water500Entry `json:"entries"`
}

// Water500 ranks the bundled systems by operational water per unit of
// delivered performance, assessing across the worker pool and reusing
// cached assessments. Water500From returns the entries already sorted by
// rank.
func (e *Engine) Water500(ctx context.Context, req Water500Request) (*Water500Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfgs, err := core.AllConfigs()
	if err != nil {
		return nil, err
	}
	for i := range cfgs {
		if req.Seed != nil {
			cfgs[i].Seed = *req.Seed
		}
		if req.Year != nil {
			cfgs[i].Year = *req.Year
		}
	}

	annuals := make([]core.Annual, len(cfgs))
	errs := make([]error, len(cfgs))
	workers := e.workers
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				annuals[i], _, errs[i] = e.annualFor(cfgs[i])
			}
		}()
	}
feed:
	for i := range cfgs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Mark every config not yet handed to a worker, so nil
			// annual slots always pair with a reported error and the
			// feeder can never block on a drained pool.
			for j := i; j < len(cfgs); j++ {
				errs[j] = fmt.Errorf("system %s: %w", cfgs[j].System.Name, ctx.Err())
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	entries, err := core.Water500From(cfgs, annuals)
	if err != nil {
		return nil, err
	}
	return &Water500Result{Entries: entries}, nil
}
