// Package thirstyflops is the public API of the ThirstyFLOPS water
// footprint framework (SC '25): modeling and analysis of the embodied and
// operational water consumption of HPC systems.
//
// The primary entry point is the Engine, a concurrency-safe assessment
// service that memoizes the deterministic per-Config simulation (weather,
// grid, and demand are pure functions of Config, Seed, and Year) and
// answers JSON-serializable requests:
//
//	eng := thirstyflops.NewEngine(thirstyflops.WithWorkers(8))
//	res, err := eng.Assess(ctx, thirstyflops.AssessRequest{System: "Frontier"})
//
// Engine.AssessMany fans a batch out across a worker pool, Engine.Sweep
// compares energy-sourcing scenarios, and Engine.Water500 ranks the
// bundled systems by water per unit of delivered performance. The
// cmd/thirstyflopsd daemon serves the same request/result model over
// HTTP. Hourly data crosses the API as the typed Series timeline, whose
// four channels (IT energy, WUE, EWF, carbon intensity) are aligned by
// construction.
//
// An Engine can also assess against observed rather than simulated
// demand: attach a live telemetry Stream (NewStream, WithLiveStream),
// feed it via Engine.Ingest or the daemon's POST /ingest, and request
// AssessRequest{Source: SourceLive} — the observed window is spliced
// over the simulated year, the result carries its provenance (LiveInfo),
// and live cache entries are keyed by the stream epoch so they never
// outlive the samples they were computed from.
//
// The remainder of the package re-exports the assembled toolkit:
//
//   - SystemConfig wires one of the paper's four supercomputers (Marconi,
//     Fugaku, Polaris, Frontier) to its climatology, grid region, cooling
//     curve, demand model, and scarcity profile.
//   - Config.Assess simulates a year of operation and returns the hourly
//     Series plus the direct/indirect water and carbon aggregates.
//   - Config.EmbodiedBreakdown evaluates the Eq. 2-5 embodied model.
//   - Config.ScenarioSweep compares energy-sourcing scenarios (100 % coal,
//     100 % nuclear, clean and water-intensive renewables).
//   - RankStartTimes and CoOptimize schedule fixed-energy jobs against
//     hourly water/carbon intensity curves.
//   - NewMiniAMR provides the parallel AMR stencil mini-app used as the
//     reference workload.
//
// One-shot top-level helpers that predate the Engine (Water500,
// RunWaterCap, ...) remain as thin wrappers over a package-default Engine;
// new code should construct an Engine and hold on to it. Custom systems,
// sites, and grids can be assembled from the exported types or loaded
// from JSON documents (ConfigDocument); see examples/ for runnable
// walkthroughs.
package thirstyflops

import (
	"context"
	"io"

	"thirstyflops/internal/configio"
	"thirstyflops/internal/core"
	"thirstyflops/internal/embodied"
	"thirstyflops/internal/energy"
	"thirstyflops/internal/geo"
	"thirstyflops/internal/hardware"
	"thirstyflops/internal/jobs"
	"thirstyflops/internal/miniamr"
	"thirstyflops/internal/sched"
	"thirstyflops/internal/sensitivity"
	"thirstyflops/internal/series"
	"thirstyflops/internal/telemetry"
	"thirstyflops/internal/units"
	"thirstyflops/internal/upgrade"
	"thirstyflops/internal/watercap"
	"thirstyflops/internal/weather"
	"thirstyflops/internal/wsi"
	"thirstyflops/internal/wue"
)

// --- Quantities ---

// Physical quantity types used across the API.
type (
	// Liters is a volume of water.
	Liters = units.Liters
	// KWh is energy in kilowatt-hours.
	KWh = units.KWh
	// Watts is instantaneous electrical power.
	Watts = units.Watts
	// Celsius is a temperature.
	Celsius = units.Celsius
	// GB is a data capacity in gigabytes.
	GB = units.GB
	// GramsCO2 is a CO2-equivalent emission mass.
	GramsCO2 = units.GramsCO2
	// LPerKWh is a water intensity (WUE, EWF, WI).
	LPerKWh = units.LPerKWh
	// GCO2PerKWh is a carbon intensity.
	GCO2PerKWh = units.GCO2PerKWh
	// PUE is a power usage effectiveness ratio.
	PUE = units.PUE
	// WSI is a water scarcity weighting factor.
	WSI = units.WSI
)

// --- Hourly timeline ---

// Series is the typed hourly timeline carrying aligned IT energy, WUE,
// EWF, and carbon-intensity channels plus the facility PUE. It is the
// only form in which hourly data crosses the API.
type Series = series.Series

// SeriesTotals aggregates a Series into the Eq. 1 operational components.
type SeriesTotals = series.Totals

// NewSeries allocates an aligned zeroed timeline.
func NewSeries(pue PUE, n int) (Series, error) { return series.New(pue, n) }

// SeriesFrom assembles a timeline from existing channels, validating
// alignment.
func SeriesFrom(pue PUE, energy []KWh, wue, ewf []LPerKWh, carbon []GCO2PerKWh) (Series, error) {
	return series.From(pue, energy, wue, ewf, carbon)
}

// SeriesFromIntensities assembles an intensity-only timeline (zero energy
// channel) for uses like start-time ranking.
func SeriesFromIntensities(pue PUE, wue, ewf []LPerKWh, carbon []GCO2PerKWh) (Series, error) {
	return series.FromIntensities(pue, wue, ewf, carbon)
}

// --- Core assessment ---

// Core model types.
type (
	// Config wires a system to its site, grid, cooling, demand, and
	// embodied parameters.
	Config = core.Config
	// Annual is one assessed year of operation.
	Annual = core.Annual
	// Monthly carries per-month aggregates for seasonal analyses.
	Monthly = core.Monthly
	// Footprint is the complete Eq. 1 decomposition over a lifetime.
	Footprint = core.Footprint
	// Parameter is one row of the Table 2 input checklist.
	Parameter = core.Parameter
	// RatioScenario parameterizes an embodied-vs-operational sweep.
	RatioScenario = core.RatioScenario
	// ScenarioResult compares one energy-sourcing scenario to the
	// current mix.
	ScenarioResult = core.ScenarioResult
	// WithdrawalParams carries the Table 3 withdrawal inputs.
	WithdrawalParams = core.WithdrawalParams
	// Withdrawal is the derived withdrawal accounting.
	Withdrawal = core.Withdrawal
)

// ConfigDocument is the JSON document shape describing a custom system,
// site, and grid — the serializable counterpart of Config used by
// AssessRequest and the configio loader.
type ConfigDocument = configio.Document

// BuildConfig assembles a validated Config from a parsed document.
func BuildConfig(doc ConfigDocument) (Config, error) { return configio.Build(doc) }

// SystemConfig returns the full paper configuration for one of the four
// Table 1 systems: "Marconi", "Fugaku", "Polaris", or "Frontier".
func SystemConfig(name string) (Config, error) { return core.ConfigFor(name) }

// AllSystemConfigs returns ready-made configs for the four paper systems.
func AllSystemConfigs() ([]Config, error) { return core.AllConfigs() }

// SystemNames lists the bundled systems in Table 1 order.
func SystemNames() []string {
	systems := hardware.Systems()
	out := make([]string, len(systems))
	for i, s := range systems {
		out[i] = s.Name
	}
	return out
}

// ParameterChecklist returns the Table 2 parameter checklist.
func ParameterChecklist() []Parameter { return core.Table2() }

// ComputeWithdrawal derives gross withdrawal from consumption and the
// Table 3 parameters.
func ComputeWithdrawal(consumption Liters, p WithdrawalParams) (Withdrawal, error) {
	return core.ComputeWithdrawal(consumption, p)
}

// DefaultWithdrawalParams returns a typical datacenter water contract.
func DefaultWithdrawalParams(discharge Liters) WithdrawalParams {
	return core.DefaultWithdrawalParams(discharge)
}

// RatioMap sweeps the scarcity-weighted embodied/operational ratio across
// manufacturing and operational WSI grids (the paper's Fig. 4).
func RatioMap(embodiedWater Liters, annualEnergy KWh, sc RatioScenario, mfgWSIs, opWSIs []float64) ([][]float64, error) {
	return core.RatioMap(embodiedWater, annualEnergy, sc, mfgWSIs, opWSIs)
}

// HighWaterCase and LowWaterCase are the two Fig. 4 operating points.
func HighWaterCase() RatioScenario { return core.HighWaterCase() }

// LowWaterCase is Fig. 4's favorable-weather, water-light-grid case.
func LowWaterCase() RatioScenario { return core.LowWaterCase() }

// --- Hardware ---

// Hardware catalog types.
type (
	// System is a supercomputer definition.
	System = hardware.System
	// Node is one compute node's hardware complement.
	Node = hardware.Node
	// Processor is a CPU or GPU package.
	Processor = hardware.Processor
	// Die is one silicon die within a package.
	Die = hardware.Die
	// StoragePool is a shared filesystem tier.
	StoragePool = hardware.StoragePool
	// EmbodiedBreakdown is the per-component embodied water of a system.
	EmbodiedBreakdown = embodied.Breakdown
	// EmbodiedParams configures the embodied model.
	EmbodiedParams = embodied.Params
)

// Storage kinds for StoragePool definitions.
const (
	HDD = hardware.HDD
	SSD = hardware.SSD
)

// Embodied breakdown components in Fig. 3 legend order.
const (
	CompCPU  = embodied.CompCPU
	CompGPU  = embodied.CompGPU
	CompDRAM = embodied.CompDRAM
	CompHDD  = embodied.CompHDD
	CompSSD  = embodied.CompSSD
)

// SystemByName looks up one of the bundled Table 1 systems.
func SystemByName(name string) (System, error) { return hardware.SystemByName(name) }

// DefaultEmbodiedParams returns the Table 2 default yield and fab EWF.
func DefaultEmbodiedParams() EmbodiedParams { return embodied.DefaultParams() }

// SystemEmbodied evaluates the embodied model for any system definition.
func SystemEmbodied(s System, p EmbodiedParams) (EmbodiedBreakdown, error) {
	return embodied.SystemBreakdown(s, p)
}

// --- Weather and cooling ---

// Weather and cooling types.
type (
	// Site is a datacenter location's climatology.
	Site = weather.Site
	// WeatherSample is one hour of site weather.
	WeatherSample = weather.Sample
	// WUECurve maps wet-bulb temperature to water usage effectiveness.
	WUECurve = wue.Curve
	// CoolingTower is the evaporation/blowdown/drift mass balance.
	CoolingTower = wue.Tower
)

// Sites returns the four paper site climatologies keyed by name.
func Sites() map[string]Site { return weather.Sites() }

// WetBulb computes the Stull (2011) wet-bulb temperature.
func WetBulb(t Celsius, rh float64) Celsius {
	return weather.WetBulb(t, units.RelativeHumidity(rh))
}

// DefaultWUECurve returns the calibrated paper cooling curve.
func DefaultWUECurve() WUECurve { return wue.DefaultCurve() }

// DefaultCoolingTower returns a typical wet cooling tower.
func DefaultCoolingTower() CoolingTower { return wue.DefaultTower() }

// --- Energy grid ---

// Grid model types.
type (
	// EnergySource is a generation technology.
	EnergySource = energy.Source
	// Mix is a generation mix (shares summing to 1).
	Mix = energy.Mix
	// Region is a grid region with availability dynamics.
	Region = energy.Region
	// GridHour is one simulated hour of grid state.
	GridHour = energy.Hour
	// Scenario identifies a Fig. 14 energy-sourcing scenario.
	Scenario = energy.Scenario
)

// Generation sources.
const (
	Coal       = energy.Coal
	Gas        = energy.Gas
	Oil        = energy.Oil
	Nuclear    = energy.Nuclear
	Hydro      = energy.Hydro
	Wind       = energy.Wind
	Solar      = energy.Solar
	Geothermal = energy.Geothermal
	Biomass    = energy.Biomass
)

// Energy-sourcing scenarios (Fig. 14).
const (
	CurrentMixScenario              = energy.CurrentMixScenario
	Coal100Scenario                 = energy.Coal100Scenario
	Nuclear100Scenario              = energy.Nuclear100Scenario
	CleanRenewableScenario          = energy.CleanRenewableScenario
	WaterIntensiveRenewableScenario = energy.WaterIntensiveRenewableScenario
)

// Regions returns the four paper grid regions keyed by name.
func Regions() map[string]Region { return energy.Regions() }

// CandidateRegions returns additional grids for site-selection studies.
func CandidateRegions() []Region {
	return []Region{energy.PacificNorthwest(), energy.Texas(), energy.Arizona()}
}

// --- Scarcity ---

// Scarcity types.
type (
	// ScarcityProfile weights direct and indirect footprints by basin
	// scarcity.
	ScarcityProfile = wsi.Profile
	// PowerPlant is one electricity supply with its basin WSI.
	PowerPlant = wsi.PowerPlant
)

// SiteScarcity returns the AWARE-global factor of a known site.
func SiteScarcity(site string) (WSI, error) { return wsi.SiteWSI(site) }

// --- Workloads and scheduling ---

// Workload and scheduling types.
type (
	// DemandModel generates utilization series.
	DemandModel = jobs.DemandModel
	// Job is one batch job in a synthetic trace.
	Job = jobs.Job
	// TraceParams parameterizes the job generator.
	TraceParams = jobs.TraceParams
	// PowerLog is an hourly IT power series.
	PowerLog = telemetry.PowerLog
	// Sample is one live observed power reading.
	Sample = telemetry.Sample
	// Stream is a concurrency-safe ring buffer of recently observed
	// hours, the live counterpart of a PowerLog.
	Stream = telemetry.Stream
	// StreamStatus reports a stream's coverage and ingestion lag.
	StreamStatus = telemetry.Status
	// StreamRegistry routes samples and live assessments across one
	// Stream per fleet system.
	StreamRegistry = telemetry.Registry
	// SchedResult summarizes a scheduling simulation.
	SchedResult = sched.Result
	// Placement records where the simulator ran one job.
	Placement = sched.Placement
	// StartOption scores one candidate start time.
	StartOption = sched.StartOption
	// Weights assigns importance to energy/water/carbon.
	Weights = sched.Weights
)

// DefaultDemand returns the production-like utilization model.
func DefaultDemand() DemandModel { return jobs.DefaultDemand() }

// GenerateTrace synthesizes a batch-job trace.
func GenerateTrace(p TraceParams, seed uint64) ([]Job, error) {
	return jobs.GenerateTrace(p, seed)
}

// DefaultTrace returns trace parameters for a machine of the given size.
func DefaultTrace(maxNodes int) TraceParams { return jobs.DefaultTrace(maxNodes) }

// FCFS simulates strict first-come-first-served scheduling.
func FCFS(trace []Job, nodes int) (SchedResult, error) { return sched.FCFS(trace, nodes) }

// EASYBackfill simulates EASY backfilling.
func EASYBackfill(trace []Job, nodes int) (SchedResult, error) {
	return sched.EASYBackfill(trace, nodes)
}

// RankStartTimes scores candidate start hours of a fixed-energy job
// against the intensity channels of an hourly timeline (Fig. 13).
func RankStartTimes(energyPerHour KWh, durationHours int, candidates []int,
	s Series) ([]StartOption, error) {
	return sched.RankStartTimes(energyPerHour, durationHours, candidates, s)
}

// RankingsDisagree reports whether water-best and carbon-best starts
// differ.
func RankingsDisagree(opts []StartOption) bool { return sched.RankingsDisagree(opts) }

// CoOptimize picks the start hour minimizing the weighted normalized
// energy/water/carbon cost (Sec. 6a).
func CoOptimize(candidates []int, energyCost, waterCost, carbonCost []float64, w Weights) (int, error) {
	return sched.CoOptimize(candidates, energyCost, waterCost, carbonCost, w)
}

// PowerLogFor synthesizes a year-long power log for a system under a
// demand model — the stand-in for the paper's published log datasets.
func PowerLogFor(sys System, d DemandModel, seed uint64, year int) PowerLog {
	return jobs.PowerLogYear(sys, d, seed, year)
}

// NewStream builds a live telemetry ring buffer retaining the most
// recent windowHours of observed samples. Attach it to an Engine with
// WithLiveStream, feed it via Engine.Ingest (or the daemon's POST
// /ingest), and assess against it with AssessRequest.Source = SourceLive.
func NewStream(system string, year int, windowHours int) (*Stream, error) {
	return telemetry.NewStream(system, year, windowHours)
}

// NewStreamRegistry builds an empty per-system stream registry. Register
// one Stream per fleet system (plus an optional wildcard), attach it
// with WithLiveStreams, and samples plus source="live" requests route by
// system name.
func NewStreamRegistry() *StreamRegistry { return telemetry.NewRegistry() }

// ErrNoLiveStream reports a sample or live assessment routed to a system
// with no registered stream; the daemon maps it to a 404-style answer.
var ErrNoLiveStream = telemetry.ErrNoStream

// DecodeSamples parses an ingest body (single JSON object, JSON array,
// or NDJSON stream) into live samples; maxSamples <= 0 applies the
// default batch bound.
func DecodeSamples(r io.Reader, maxSamples int) ([]Sample, error) {
	return telemetry.DecodeSamples(r, maxSamples)
}

// --- Water capping (Takeaway 5) and Water500 (Sec. 6b) ---

// Coordination and ranking types.
type (
	// WaterCapPolicy configures the water-budget coordinator.
	WaterCapPolicy = watercap.Policy
	// WaterCapResult aggregates a coordinated run.
	WaterCapResult = watercap.Result
	// Water500Entry is one row of the water-efficiency ranking.
	Water500Entry = core.Water500Entry
)

// DefaultDryMix is the gas/wind/solar dispatch the coordinator can shift
// toward when water is constrained.
func DefaultDryMix() Mix { return watercap.DefaultDryMix() }

// RunWaterCap coordinates a constrained hourly water budget between
// cooling and generation over an assessed hourly timeline.
func RunWaterCap(p WaterCapPolicy, s Series) (WaterCapResult, error) {
	return watercap.Run(p, s)
}

// Water500 ranks the bundled systems by operational water per unit of
// delivered performance.
//
// Deprecated: use Engine.Water500, which reuses cached assessments and
// honors a context.
func Water500() ([]Water500Entry, error) {
	res, err := DefaultEngine().Water500(context.Background(), Water500Request{})
	if err != nil {
		return nil, err
	}
	return res.Entries, nil
}

// --- Geo-distributed shifting (Takeaway 7) ---

// Geo-scheduling types.
type (
	// GeoCenter is one HPC site participating in a shifting fleet.
	GeoCenter = geo.Center
	// GeoJob is one deferrable unit of shifted work.
	GeoJob = geo.Job
	// GeoPolicy selects the dispatch objective.
	GeoPolicy = geo.Policy
	// GeoOutcome aggregates a dispatch run.
	GeoOutcome = geo.Outcome
)

// Geo dispatch policies.
const (
	EnergyGreedy  = geo.EnergyGreedy
	CarbonGreedy  = geo.CarbonGreedy
	WaterGreedy   = geo.WaterGreedy
	ScarcityAware = geo.ScarcityAware
	CoOptimized   = geo.CoOptimized
)

// GeoCenterFrom assesses a configured system and wraps it as a fleet
// center with the given headroom fraction of peak power.
func GeoCenterFrom(cfg Config, headroomFraction float64) (GeoCenter, error) {
	return geo.CenterFromConfig(cfg, headroomFraction)
}

// GeoDispatch routes jobs across the fleet under the policy.
func GeoDispatch(centers []GeoCenter, jobsIn []GeoJob, policy GeoPolicy) (GeoOutcome, error) {
	return geo.Dispatch(centers, jobsIn, policy)
}

// GeoCompareAll dispatches the same jobs under every policy.
func GeoCompareAll(centers []GeoCenter, jobsIn []GeoJob) ([]GeoOutcome, error) {
	return geo.CompareAll(centers, jobsIn)
}

// GeoSyntheticJobs builds a deterministic stream of deferrable jobs.
func GeoSyntheticJobs(count, horizon, meanHours int, meanPowerKW float64, seed uint64) []GeoJob {
	return geo.SyntheticJobs(count, horizon, meanHours, meanPowerKW, seed)
}

// --- Upgrade payback (Sec. 6 upgrade cycles) ---

// Upgrade types.
type (
	// UpgradePlan describes replacing a running system with newer
	// technology at the same delivered Rmax.
	UpgradePlan = upgrade.Plan
	// UpgradeAnalysis is the water payback outcome.
	UpgradeAnalysis = upgrade.Analysis
)

// AnalyzeUpgrade evaluates the water payback of a hardware upgrade.
func AnalyzeUpgrade(p UpgradePlan) (UpgradeAnalysis, error) { return upgrade.Analyze(p) }

// --- Sensitivity analysis ---

// Sensitivity types.
type (
	// SensitivityFactor is one swept Table 2 input.
	SensitivityFactor = sensitivity.Factor
	// SensitivityResult is one factor's footprint impact.
	SensitivityResult = sensitivity.Result
)

// SensitivityAnalyze sweeps the Table 2 parameter ranges for a
// configuration; nil factors selects the defaults.
func SensitivityAnalyze(cfg Config, years float64, factors []SensitivityFactor) ([]SensitivityResult, error) {
	return sensitivity.Analyze(cfg, years, factors)
}

// --- miniAMR workload ---

// Mini-app types.
type (
	// MiniAMRConfig parameterizes the AMR stencil mini-app.
	MiniAMRConfig = miniamr.Config
	// MiniAMRStats aggregates one mini-app run.
	MiniAMRStats = miniamr.Stats
	// MiniAMR is the adaptive mesh.
	MiniAMR = miniamr.Mesh
	// MiniAMREnergyModel converts mini-app work into energy.
	MiniAMREnergyModel = miniamr.EnergyModel
)

// DefaultMiniAMRConfig returns a small but non-trivial problem.
func DefaultMiniAMRConfig() MiniAMRConfig { return miniamr.DefaultConfig() }

// NewMiniAMR builds the level-0 mesh for a configuration.
func NewMiniAMR(cfg MiniAMRConfig) (*MiniAMR, error) { return miniamr.New(cfg) }

// DefaultMiniAMREnergyModel returns the calibrated per-cell-update model.
func DefaultMiniAMREnergyModel() MiniAMREnergyModel { return miniamr.DefaultEnergyModel() }
