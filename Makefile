# Convenience targets mirroring CI. The bench targets run the gated
# benchmark sets with -benchmem and fail on large regressions against the
# committed baselines (generous time ratio for machine variance, tight
# allocation ratio because allocation counts are near-deterministic):
# bench-core gates the modeling hot paths against BENCH_PR2.json,
# bench-daemon gates the thirstyflopsd HTTP serving path (concurrent
# /assess throughput, live assess, NDJSON ingest) against BENCH_PR3.json,
# bench-plan gates the substrate-aware sweep planner (planned vs
# unplanned shuffled sweep, plan construction) against BENCH_PR4.json,
# bench-store gates the persistence tier (record append, disk get, warm
# boot of a 10k-entry log, and the engine-level disk-hit vs isolated
# recompute pair) against BENCH_PR5.json,
# bench-statsd gates the UDP telemetry plane (zero-allocation line
# parser, per-datagram aggregate path, end-to-end loopback ingest)
# against BENCH_PR6.json,
# bench-wire gates the negotiated serving codecs (binary wire frame vs
# JSON for full-year series results, NDJSON job-result streaming, and
# the encode/decode micro-benches behind them) against BENCH_PR8.json,
# bench-watch gates the live push hub (publish-to-last-delivery fanout
# latency at 1/100/1000 subscribers, per-event allocation flatness)
# against BENCH_PR9.json,
# bench-gang gates the fleet-wide gang scheduler (four concurrent
# overlapping sweeps merged into one substrate-affine schedule vs
# per-batch planning, with a substrate generations/op column) against
# BENCH_PR10.json.
# The docs target runs the documentation drift gate: route list in
# docs/HTTP_API.md vs the daemon mux (cmd/docscheck), go vet, and an
# examples build.
# The chaos target runs the full randomized fault-schedule suite
# (CHAOS=1 unlocks the long multi-seed schedules; the short
# deterministic smoke variant already runs in the default test tier)
# under the race detector, alongside the store fault-injection and
# engine degraded-mode tests.

GATED_BENCHES = ^(BenchmarkEngineAssessCold|BenchmarkEngineAssessColdIsolated|BenchmarkEngineAssessCached|BenchmarkConfigFingerprint|BenchmarkAssessYear|BenchmarkFCFS|BenchmarkEASYBackfill|BenchmarkStartTimeRanking|BenchmarkStartTimeRankingFullYear|BenchmarkWUECurveSeries|BenchmarkWUECurveTable|BenchmarkWeatherYear|BenchmarkGridYear)$$

GATED_DAEMON_BENCHES = ^(BenchmarkDaemonAssess|BenchmarkDaemonAssessLive|BenchmarkDaemonIngest)$$

GATED_PLAN_BENCHES = ^(BenchmarkSweepPlanned|BenchmarkSweepUnplanned|BenchmarkPlanBuild)$$

GATED_STORE_BENCHES = ^(BenchmarkStoreAppend|BenchmarkStoreGet|BenchmarkWarmStart|BenchmarkEngineWarmStartDisk|BenchmarkEngineAssessColdIsolated)$$

GATED_STATSD_BENCHES = ^(BenchmarkParseLine|BenchmarkParsePacket|BenchmarkAggregatorAccumulate|BenchmarkUDPIngest)$$

GATED_WIRE_BENCHES = ^(BenchmarkDaemonAssessWire|BenchmarkDaemonAssessSeriesJSON|BenchmarkDaemonAssessSeriesWire|BenchmarkDaemonJobResultStream|BenchmarkWireEncodeResult|BenchmarkWireEncodeSeriesResult|BenchmarkJSONEncodeSeriesResult|BenchmarkWireDecodeSeriesResult)$$

GATED_WATCH_BENCHES = ^(BenchmarkWatchFanout1|BenchmarkWatchFanout100|BenchmarkWatchFanout1000)$$

GATED_GANG_BENCHES = ^(BenchmarkConcurrentBatchesGang|BenchmarkConcurrentBatchesPerBatch)$$

.PHONY: build test race bench bench-core bench-daemon bench-plan bench-store bench-statsd bench-wire bench-watch bench-gang docs chaos

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench: bench-core bench-daemon bench-plan bench-store bench-statsd bench-wire bench-watch bench-gang

bench-core:
	go test -run '^$$' -bench '$(GATED_BENCHES)' -benchmem -benchtime=500ms -count=1 . \
		| go run ./cmd/benchcheck -baseline BENCH_PR2.json

bench-daemon:
	go test -run '^$$' -bench '$(GATED_DAEMON_BENCHES)' -benchmem -benchtime=500ms -count=1 ./cmd/thirstyflopsd \
		| go run ./cmd/benchcheck -baseline BENCH_PR3.json

bench-plan:
	go test -run '^$$' -bench '$(GATED_PLAN_BENCHES)' -benchmem -benchtime=500ms -count=1 . \
		| go run ./cmd/benchcheck -baseline BENCH_PR4.json

# One go test invocation over both packages so benchcheck sees the whole
# BENCH_PR5 set (store micro-benches + the engine-level warm/cold pair)
# on a single stream.
bench-store:
	go test -run '^$$' -bench '$(GATED_STORE_BENCHES)' -benchmem -benchtime=500ms -count=1 . ./internal/store \
		| go run ./cmd/benchcheck -baseline BENCH_PR5.json

bench-statsd:
	go test -run '^$$' -bench '$(GATED_STATSD_BENCHES)' -benchmem -benchtime=500ms -count=1 ./internal/statsd \
		| go run ./cmd/benchcheck -baseline BENCH_PR6.json

# One invocation over both packages so benchcheck sees the daemon-level
# negotiated paths and the wire micro-benches on a single stream.
bench-wire:
	go test -run '^$$' -bench '$(GATED_WIRE_BENCHES)' -benchmem -benchtime=500ms -count=1 ./cmd/thirstyflopsd ./internal/wire \
		| go run ./cmd/benchcheck -baseline BENCH_PR8.json

bench-watch:
	go test -run '^$$' -bench '$(GATED_WATCH_BENCHES)' -benchmem -benchtime=500ms -count=1 ./internal/watch \
		| go run ./cmd/benchcheck -baseline BENCH_PR9.json

bench-gang:
	go test -run '^$$' -bench '$(GATED_GANG_BENCHES)' -benchmem -benchtime=500ms -count=1 . \
		| go run ./cmd/benchcheck -baseline BENCH_PR10.json

docs:
	go vet ./...
	go build ./examples/...
	go run ./cmd/docscheck

chaos:
	CHAOS=1 go test -race -count=1 -run '^TestChaos' ./cmd/thirstyflopsd
	go test -race -count=1 -run 'Fault|Wedge|Degraded|Panic|Resilience|Breaker' ./...
