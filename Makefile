# Convenience targets mirroring CI. The bench targets run the gated
# benchmark sets with -benchmem and fail on large regressions against the
# committed baselines (generous time ratio for machine variance, tight
# allocation ratio because allocation counts are near-deterministic):
# bench-core gates the modeling hot paths against BENCH_PR2.json,
# bench-daemon gates the thirstyflopsd HTTP serving path (concurrent
# /assess throughput, live assess, NDJSON ingest) against BENCH_PR3.json.

GATED_BENCHES = ^(BenchmarkEngineAssessCold|BenchmarkEngineAssessColdIsolated|BenchmarkEngineAssessCached|BenchmarkConfigFingerprint|BenchmarkAssessYear|BenchmarkFCFS|BenchmarkEASYBackfill|BenchmarkStartTimeRanking|BenchmarkStartTimeRankingFullYear|BenchmarkWUECurveSeries|BenchmarkWUECurveTable|BenchmarkWeatherYear|BenchmarkGridYear)$$

GATED_DAEMON_BENCHES = ^(BenchmarkDaemonAssess|BenchmarkDaemonAssessLive|BenchmarkDaemonIngest)$$

.PHONY: build test race bench bench-core bench-daemon

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench: bench-core bench-daemon

bench-core:
	go test -run '^$$' -bench '$(GATED_BENCHES)' -benchmem -benchtime=500ms -count=1 . \
		| go run ./cmd/benchcheck -baseline BENCH_PR2.json

bench-daemon:
	go test -run '^$$' -bench '$(GATED_DAEMON_BENCHES)' -benchmem -benchtime=500ms -count=1 ./cmd/thirstyflopsd \
		| go run ./cmd/benchcheck -baseline BENCH_PR3.json
