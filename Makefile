# Convenience targets mirroring CI. The bench target runs the gated core
# benchmark set with -benchmem and fails on large regressions against the
# committed BENCH_PR2.json baseline (generous time ratio for machine
# variance, tight allocation ratio because allocation counts are
# deterministic).

GATED_BENCHES = ^(BenchmarkEngineAssessCold|BenchmarkEngineAssessColdIsolated|BenchmarkEngineAssessCached|BenchmarkConfigFingerprint|BenchmarkAssessYear|BenchmarkFCFS|BenchmarkEASYBackfill|BenchmarkStartTimeRanking|BenchmarkStartTimeRankingFullYear|BenchmarkWUECurveSeries|BenchmarkWUECurveTable|BenchmarkWeatherYear|BenchmarkGridYear)$$

.PHONY: build test race bench

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -run '^$$' -bench '$(GATED_BENCHES)' -benchmem -benchtime=500ms -count=1 . \
		| go run ./cmd/benchcheck -baseline BENCH_PR2.json
